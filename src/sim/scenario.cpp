#include "sim/scenario.h"

#include <cmath>
#include <string>

#include "phy/geometry.h"
#include "util/check.h"
#include "util/rng.h"
#include "video/mgs_model.h"

namespace femtocr::sim {

void Scenario::finalize() {
  FEMTOCR_CHECK(!fbss.empty(), "scenario needs at least one FBS");
  FEMTOCR_CHECK(!users.empty(), "scenario needs at least one user");
  FEMTOCR_CHECK(common_bandwidth > 0.0 && licensed_bandwidth > 0.0,
                "bandwidths must be positive");
  FEMTOCR_CHECK(gop_deadline > 0 && num_gops > 0,
                "need at least one slot to simulate");
  spectrum.num_users = users.size();
  spectrum.num_fbs = fbss.size();
  spectrum.validate();
  radio.validate();
  faults.validate();
  for (const auto& u : users) {
    video::sequence(u.video_name);  // throws on unknown sequences
  }
}

void Scenario::set_utilization(double eta) {
  const double mixing = spectrum.occupancy.p01 + spectrum.occupancy.p10;
  spectrum.occupancy = spectrum::MarkovParams::from_utilization(eta, mixing);
  spectrum.per_channel.clear();  // homogeneous again: drop any ramp override
}

void Scenario::set_utilization_ramp(double eta_lo, double eta_hi) {
  const double mixing = spectrum.occupancy.p01 + spectrum.occupancy.p10;
  spectrum.per_channel.clear();
  const std::size_t m = spectrum.num_licensed;
  FEMTOCR_CHECK(m > 0, "need licensed channels before setting a ramp");
  for (std::size_t i = 0; i < m; ++i) {
    const double f =
        m == 1 ? 0.5 : static_cast<double>(i) / static_cast<double>(m - 1);
    spectrum.per_channel.push_back(spectrum::MarkovParams::from_utilization(
        eta_lo + f * (eta_hi - eta_lo), mixing));
  }
}

void Scenario::set_sensing_errors(double false_alarm, double miss_detection) {
  spectrum.user_sensor = {false_alarm, miss_detection};
  spectrum.fbs_sensor = {false_alarm, miss_detection};
  spectrum.user_sensor.validate();
  spectrum.fbs_sensor.validate();
}

Scenario single_fbs_scenario(std::uint64_t seed) {
  Scenario s;
  s.name = "single-fbs";
  s.seed = seed;

  s.spectrum.num_licensed = 8;
  s.spectrum.occupancy = {0.4, 0.3};
  s.spectrum.gamma = 0.2;
  s.spectrum.user_sensor = {0.3, 0.3};
  s.spectrum.fbs_sensor = {0.3, 0.3};

  s.common_bandwidth = 0.3;
  s.licensed_bandwidth = 0.3;
  s.gop_deadline = 10;
  s.num_gops = 20;

  s.mbs.position = {0.0, 0.0};
  s.fbss = {{0, {80.0, 0.0}, 15.0}};

  // Fixed user placement (deterministic from the seed) so per-user results
  // are comparable across schemes and runs, as in the paper's Fig. 3.
  util::Rng rng(seed ^ 0xfeedface);
  const std::vector<std::string> videos = {"Bus", "Mobile", "Harbor"};
  s.users = net::Topology::scatter_users(s.fbss, 3, videos, rng);

  s.finalize();
  return s;
}

Scenario interfering_scenario(std::uint64_t seed) {
  Scenario s;
  s.name = "interfering";
  s.seed = seed;

  s.spectrum.num_licensed = 8;
  s.spectrum.occupancy = {0.4, 0.3};
  s.spectrum.gamma = 0.2;
  s.spectrum.user_sensor = {0.3, 0.3};
  s.spectrum.fbs_sensor = {0.3, 0.3};

  s.common_bandwidth = 0.3;
  s.licensed_bandwidth = 0.3;
  s.gop_deadline = 10;
  s.num_gops = 20;

  s.mbs.position = {0.0, 0.0};
  // Coverage disks of radius 12 m, 20 m apart: 1-2 and 2-3 overlap
  // (20 < 24), 1-3 do not (40 > 24) — the path graph of Fig. 5.
  s.fbss = {
      {0, {70.0, 0.0}, 12.0},
      {1, {90.0, 0.0}, 12.0},
      {2, {110.0, 0.0}, 12.0},
  };

  util::Rng rng(seed ^ 0xabcdef01);
  const std::vector<std::string> videos = {"Bus",     "Mobile", "Harbor",
                                           "Foreman", "Crew",   "City",
                                           "Soccer",  "Football", "Ice"};
  s.users = net::Topology::scatter_users(s.fbss, 3, videos, rng);

  s.finalize();
  return s;
}

Scenario fig1_scenario(std::uint64_t seed) {
  Scenario s;
  s.name = "fig1";
  s.seed = seed;

  s.spectrum.num_licensed = 8;
  s.spectrum.occupancy = {0.4, 0.3};
  s.spectrum.gamma = 0.2;
  s.spectrum.user_sensor = {0.3, 0.3};
  s.spectrum.fbs_sensor = {0.3, 0.3};

  s.common_bandwidth = 0.3;
  s.licensed_bandwidth = 0.3;
  s.gop_deadline = 10;
  s.num_gops = 20;

  s.mbs.position = {0.0, 0.0};
  // FBS 1 and 2 far apart (isolated); FBS 3 and 4 overlapping — the Fig. 2
  // interference graph with its single edge.
  s.fbss = {
      {0, {-80.0, 0.0}, 12.0},
      {1, {0.0, 85.0}, 12.0},
      {2, {75.0, -10.0}, 12.0},
      {3, {95.0, -10.0}, 12.0},
  };

  util::Rng rng(seed ^ 0x00F16001);
  const std::vector<std::string> videos = {"Bus",  "Mobile",   "Harbor",
                                           "Crew", "Football", "City",
                                           "Ice",  "Soccer"};
  s.users = net::Topology::scatter_users(s.fbss, 2, videos, rng);

  s.finalize();
  return s;
}

namespace {

/// Knuth's product-of-uniforms Poisson sampler: deterministic from `rng`'s
/// stream, exact for the small means a cluster uses.
std::size_t sample_poisson(double mean, util::Rng& rng) {
  const double limit = std::exp(-mean);
  std::size_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng.uniform();
  } while (p > limit);
  return k - 1;
}

/// Truncated-Pareto users-per-cell draw: floor((1-u)^(-1/alpha)) is >= 1
/// and heavy-tailed; the truncation keeps a single hot cell from dwarfing
/// the slot problem.
std::size_t sample_user_count(double alpha, std::size_t max_users,
                              util::Rng& rng) {
  const double u = rng.uniform();
  const double x = std::pow(1.0 - u, -1.0 / alpha);
  const auto n = static_cast<std::size_t>(x);
  return std::min(std::max<std::size_t>(n, 1), max_users);
}

}  // namespace

Scenario city_scenario(const CityConfig& cfg, std::uint64_t seed) {
  FEMTOCR_CHECK(cfg.clusters > 0, "city scenario needs at least one cluster");
  FEMTOCR_CHECK(cfg.fbs_per_cluster > 0.0 && cfg.coverage_radius > 0.0,
                "city cluster parameters must be positive");
  FEMTOCR_CHECK(cfg.user_tail_alpha > 0.0 && cfg.max_users_per_fbs > 0,
                "city user-tail parameters must be positive");

  Scenario s;
  s.name = "city";
  s.seed = seed;

  s.spectrum.num_licensed = cfg.num_licensed;
  s.spectrum.occupancy = {0.4, 0.3};
  s.spectrum.gamma = 0.2;
  s.spectrum.user_sensor = {0.3, 0.3};
  s.spectrum.fbs_sensor = {0.3, 0.3};

  s.common_bandwidth = 0.3;
  s.licensed_bandwidth = 0.3;
  s.gop_deadline = 10;
  s.num_gops = cfg.num_gops;

  s.mbs.position = {0.0, 0.0};

  util::Rng rng(seed ^ 0xC17C17C1);
  const phy::Disk city{{0.0, 0.0}, cfg.city_radius};
  for (std::size_t c = 0; c < cfg.clusters; ++c) {
    const phy::Point parent = phy::random_in_disk(city, rng);
    // The first cluster always deploys at least one cell, so degenerate
    // configs still produce a valid scenario.
    std::size_t daughters = sample_poisson(cfg.fbs_per_cluster, rng);
    if (c == 0 && daughters == 0) daughters = 1;
    const phy::Disk neighbourhood{parent, cfg.cluster_radius};
    for (std::size_t d = 0; d < daughters; ++d) {
      s.fbss.push_back({s.fbss.size(), phy::random_in_disk(neighbourhood, rng),
                        cfg.coverage_radius});
    }
  }

  // Heavy-tailed per-cell user load: placement stays inside the spawning
  // cell's coverage (the Topology re-associates by nearest FBS, which can
  // only hand a user to another cell of the same cluster).
  const std::vector<std::string> videos = {"Bus",     "Mobile", "Harbor",
                                           "Foreman", "Crew",   "City",
                                           "Soccer",  "Football", "Ice"};
  std::size_t v = 0;
  for (const net::FemtoBaseStation& f : s.fbss) {
    const std::size_t count =
        sample_user_count(cfg.user_tail_alpha, cfg.max_users_per_fbs, rng);
    for (std::size_t k = 0; k < count; ++k) {
      net::CrUser u;
      u.id = s.users.size();
      u.position = phy::random_in_disk(f.coverage(), rng);
      u.video_name = videos[v % videos.size()];
      u.fbs = f.id;
      ++v;
      s.users.push_back(std::move(u));
    }
  }

  s.finalize();
  return s;
}

}  // namespace femtocr::sim
