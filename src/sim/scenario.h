// Scenario configuration: everything needed to reproduce one simulation
// setup from the paper's Section V, plus factories for the two scenarios it
// evaluates (single FBS; three interfering FBSs in a path graph).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/dual_solver.h"
#include "net/topology.h"
#include "sim/faults.h"
#include "spectrum/spectrum_manager.h"

namespace femtocr::sim {

/// How licensed-channel throughput is credited each slot.
enum class Accounting {
  /// Paper-faithful: the licensed rate scales with the *expected* available
  /// channel count G_t (Eq. 10's constraint), as the formulation assumes.
  kExpected,
  /// Collision-aware: only channels that are truly idle deliver; accessed
  /// busy channels collide with primary users and carry nothing.
  kRealized,
};

/// How video data moves through the allocated capacity.
enum class DeliveryModel {
  /// Fluid rate model: PSNR increments of xi * rho * G * R per slot — the
  /// paper's formulation (Eq. 10's state recursion).
  kFluid,
  /// Packet model: significance-ordered NAL units, head-of-line
  /// retransmission on slot loss, overdue discard at the GOP deadline
  /// (Section III-E's transmission discipline, modeled explicitly).
  kPacket,
};

struct Scenario {
  std::string name = "scenario";

  // Spectrum (Section III-A/B/C). num_users/num_fbs are filled from the
  // deployment by finalize().
  spectrum::SpectrumConfig spectrum;

  // Bandwidths (Mbps): B0 common, B1 per licensed channel.
  double common_bandwidth = 0.3;
  double licensed_bandwidth = 0.3;

  // Video timing: GOP deadline T slots, and how many GOPs to simulate.
  std::size_t gop_deadline = 10;
  std::size_t num_gops = 20;
  /// Play-out duration of one GOP (16 CIF frames at 30 fps); divides into
  /// gop_deadline slots. Only the packet delivery model consumes it.
  double gop_seconds = 16.0 / 30.0;
  /// NAL-unit payload size for the packet model. MGS slices are a few
  /// hundred bytes; 4000 bits (~500 B) keeps the quantization well below a
  /// slot's per-user capacity slice (ablation A4 sweeps this).
  std::size_t packet_bits = 4000;

  // Deployment.
  net::MacroBaseStation mbs{{0.0, 0.0}};
  std::vector<net::FemtoBaseStation> fbss;
  std::vector<net::CrUser> users;
  net::RadioConfig radio;
  /// Explicit interference graph (otherwise derived from coverage disks).
  std::optional<net::InterferenceGraph> graph;

  /// Pedestrian mobility: when stddev > 0, every user takes a Gaussian
  /// step at each GOP boundary (clamped to the deployment's bounding box)
  /// and the topology re-derives links and nearest-FBS association — users
  /// can hand off between femtocells mid-stream.
  struct Mobility {
    double step_stddev = 0.0;  ///< meters per GOP; 0 disables mobility
    double margin = 5.0;       ///< bounding-box slack around the cells
  };
  Mobility mobility;

  Accounting accounting = Accounting::kExpected;
  DeliveryModel delivery = DeliveryModel::kFluid;
  core::DualOptions dual;
  /// Run the Proposed scheme's non-interfering path on the literal Table
  /// I/II subgradient (warm-started per slot) instead of the exact
  /// water-filling solver. Off by default; the chaos profiles turn it on
  /// so iteration-budget squeezes exercise the degradation chain.
  bool use_distributed_solver = false;
  /// Fault injection (sim/faults.h). All-zero by default: the plan is
  /// empty and the run is bitwise identical to a fault-free build.
  FaultProfile faults;
  std::uint64_t seed = 1;

  /// Copies deployment counts into the spectrum config and validates.
  void finalize();

  /// Sets all channels' occupancy to the target stationary utilization
  /// (keeps the mixing intensity of the paper's baseline 0.4+0.3).
  void set_utilization(double eta);

  /// Sets the sensing error pair (epsilon, delta) for users and FBSs alike,
  /// matching the paper's symmetric setting.
  void set_sensing_errors(double false_alarm, double miss_detection);

  /// Heterogeneous spectrum: per-channel utilizations ramp linearly from
  /// `eta_lo` (channel 0) to `eta_hi` (channel M-1), same mixing intensity
  /// as the homogeneous baseline. Mean utilization = (lo + hi) / 2.
  void set_utilization_ramp(double eta_lo, double eta_hi);
};

/// Section V-A: M = 8 channels, P01 = 0.4, P10 = 0.3, gamma = 0.2, one FBS,
/// three users streaming Bus, Mobile, Harbor; T = 10; eps = delta = 0.3;
/// B0 = B1 = 0.3 Mbps. Geometry: MBS at the origin, the femtocell ~80 m out.
Scenario single_fbs_scenario(std::uint64_t seed = 1);

/// Section V-B: three FBSs whose coverages form the path graph of Fig. 5
/// (1-2 and 2-3 overlap, 1-3 do not), three users each, nine videos.
Scenario interfering_scenario(std::uint64_t seed = 1);

/// The paper's Fig. 1 illustration network: four FBSs around the MBS, FBS 1
/// and 2 isolated, FBS 3 and 4 overlapping — interference graph of Fig. 2
/// (one edge, Dmax = 1, so Theorem 2 guarantees at least half the optimal
/// channel gain). Two users per femtocell.
Scenario fig1_scenario(std::uint64_t seed = 1);

/// City-scale deployment knobs (EXPERIMENTS.md, "City scenario"). The
/// deployment is a Matérn cluster process: `clusters` parent points fall
/// uniformly in a disk of radius `city_radius`; each parent spawns a
/// Poisson(`fbs_per_cluster`) number of femtocells uniformly within
/// `cluster_radius` of it. Dense clusters overlap internally (interference
/// edges), distant clusters do not — so the interference graph splits into
/// roughly one component per cluster, the structure the shard engine
/// (core/shard.h) exploits. Users per cell follow a truncated-Pareto heavy
/// tail: most cells serve a couple of streams, a few serve many.
struct CityConfig {
  std::size_t clusters = 250;          ///< Matérn parent count
  double city_radius = 3000.0;         ///< parent disk radius (m)
  double cluster_radius = 45.0;        ///< daughter scatter radius (m)
  double fbs_per_cluster = 8.0;        ///< Poisson mean daughters per parent
  double coverage_radius = 14.0;       ///< per-FBS coverage disk (m)
  double user_tail_alpha = 1.4;        ///< Pareto tail index, users per cell
  std::size_t max_users_per_fbs = 12;  ///< heavy-tail truncation
  std::size_t num_licensed = 16;       ///< licensed channels M
  std::size_t num_gops = 5;            ///< city runs are per-slot studies
};

/// Generates a city-scale scenario from `cfg` (defaults: ~2000 FBSs,
/// several thousand users). The interference graph is left to be derived
/// from coverage overlaps; users carry their spawning cell in `fbs` (the
/// Topology re-associates by geometry when simulated). Deterministic in
/// (cfg, seed).
Scenario city_scenario(const CityConfig& cfg = {}, std::uint64_t seed = 1);

}  // namespace femtocr::sim
