// Parameter-sweep helpers shared by the bench binaries: each paper figure
// varies one knob of a base scenario; these helpers apply the knob and
// render the standard comparison table (x, Proposed, Heuristic 1,
// Heuristic 2 [, Upper bound]).
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "sim/scenario.h"

namespace femtocr::sim {

/// One sweep point: the knob value and the per-scheme summaries.
struct SweepRow {
  double x = 0.0;
  std::vector<SchemeSummary> schemes;  ///< Proposed, H1, H2 order
};

struct SweepOptions {
  /// Carry dual prices across adjacent sweep points: chain (scheme, run)
  /// cells so point p+1's simulator is seeded with point p's final carried
  /// prices (Simulator::seed_prices / final_prices). Adjacent points drift
  /// slowly, so the seed lands near the next optimum — the live warm-start
  /// regime. Only the Proposed scheme on the distributed-solver path has a
  /// price state; everything else ignores the seed. Off by default: the
  /// figure benches keep the historical fully-independent grid.
  bool carry_prices = false;
};

/// Runs `runs` simulations of all three schemes for every knob value,
/// fanning the whole (point, scheme, run) grid across the replication
/// engine (util::parallel_for; thread count from util::default_threads()).
/// Output is bitwise identical for any thread count — see the seeding
/// contract in sim/experiment.h; with `carry_prices` the parallel unit is
/// the (scheme, run) chain walking the points serially, which preserves
/// the same invariance. `apply` mutates a copy of the base scenario for
/// the given knob value (and must leave it finalized); it is invoked
/// serially, before the fan-out.
std::vector<SweepRow> sweep(const Scenario& base,
                            const std::vector<double>& xs,
                            const std::function<void(Scenario&, double)>& apply,
                            std::size_t runs = 10, SweepOptions options = {});

/// Prints the standard figure table: one row per sweep point with
/// mean +/- 95% CI per scheme; adds the upper-bound column when
/// `with_bound` (the interfering-FBS figures plot it). Also emits CSV
/// lines tagged `title`.
void print_sweep(std::ostream& os, const std::string& title,
                 const std::string& x_label,
                 const std::vector<SweepRow>& rows, bool with_bound);

}  // namespace femtocr::sim
