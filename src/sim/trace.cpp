#include "sim/trace.h"

#include <ostream>

namespace femtocr::sim {

void TraceRecorder::write_csv(std::ostream& os) const {
  os << "slot,gop,available,expected_channels,collisions,objective,"
        "upper_bound,bound_gap,user,bs,rho,increment,psnr\n";
  for (const auto& e : entries_) {
    // Eq. (23) optimality gap for the slot, precomputed so downstream
    // plotting (scripts/plot_figures.py --trace) never re-derives it.
    const double bound_gap =
        e.upper_bound > e.objective ? e.upper_bound - e.objective : 0.0;
    for (std::size_t j = 0; j < e.users.size(); ++j) {
      const auto& u = e.users[j];
      os << e.slot << ',' << e.gop << ',' << e.available << ','
         << e.expected_channels << ',' << e.collisions << ',' << e.objective
         << ',' << e.upper_bound << ',' << bound_gap << ',' << j << ','
         << (u.use_mbs ? "mbs" : "fbs") << ',' << u.rho << ',' << u.increment
         << ',' << u.psnr_after << '\n';
    }
  }
}

}  // namespace femtocr::sim
