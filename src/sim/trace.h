// Per-slot execution traces.
//
// Attach a TraceRecorder to a Simulator to capture, for every slot, the
// spectrum outcome (available set size, G_t, collisions), the allocator's
// objective and bound, and each user's assignment, share, realized PSNR
// increment and state. Used for debugging allocation behaviour, for the
// examples' walk-throughs, and dumpable as CSV for external analysis.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

namespace femtocr::sim {

struct UserSlotTrace {
  bool use_mbs = false;
  double rho = 0.0;        ///< share on the chosen base station
  double increment = 0.0;  ///< realized PSNR delivery this slot (dB)
  double psnr_after = 0.0; ///< W after the slot (dB)
};

struct SlotTraceEntry {
  std::size_t slot = 0;
  std::size_t gop = 0;
  std::size_t available = 0;       ///< |A(t)|
  double expected_channels = 0.0;  ///< G_t
  std::size_t collisions = 0;      ///< accessed channels that were busy
  double objective = 0.0;          ///< allocator's Q for the slot
  double upper_bound = 0.0;        ///< Eq. 23 bound (== Q when exact)
  /// Connected components of the slot's interference graph — the shard
  /// count of the per-component solve (core/shard.h). Derived from the
  /// topology, so it only moves when mobility rewires coverage. Not part
  /// of the CSV schema (write_csv is unchanged).
  std::size_t components = 0;
  std::vector<UserSlotTrace> users;
};

class TraceRecorder {
 public:
  void record(SlotTraceEntry entry) { entries_.push_back(std::move(entry)); }

  const std::vector<SlotTraceEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  void clear() { entries_.clear(); }

  /// One CSV row per (slot, user): slot, gop, |A|, G_t, collisions, Q,
  /// bound, user, bs, rho, increment, psnr.
  void write_csv(std::ostream& os) const;

 private:
  std::vector<SlotTraceEntry> entries_;
};

}  // namespace femtocr::sim
