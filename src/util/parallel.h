// Deterministic fan-out for independent replications.
//
// parallel_for(n, fn) runs fn(0), ..., fn(n-1) across a fixed pool of
// worker threads plus the calling thread. Indices are handed out
// dynamically through an atomic cursor, so *completion order* is
// scheduling-dependent — callers keep results deterministic by having
// fn(i) write only into slot i of a pre-sized buffer and folding the
// buffer in index order afterwards. The engine may only decide *when*
// work happens, never *what* is computed: combined with the
// (sweep-point, scheme, replication) seeding contract in sim/experiment.h
// this makes every experiment bitwise identical for any thread count,
// including 1.
//
// Thread-count resolution (first match wins):
//   1. the explicit `threads` argument to parallel_for,
//   2. set_default_threads(n)   — wired to the benches' --threads flag,
//   3. the FEMTOCR_THREADS environment variable,
//   4. std::thread::hardware_concurrency().
//
// This header and parallel.cpp are the only places in the library allowed
// to touch raw threading primitives (enforced by the no-raw-thread lint
// rule); everything else expresses parallelism as parallel_for.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace femtocr::util {

/// Worker threads parallel_for uses when `threads` is 0: the last nonzero
/// value passed to set_default_threads(), else FEMTOCR_THREADS, else
/// hardware concurrency. Always >= 1.
std::size_t default_threads();

/// Overrides default_threads() process-wide; 0 restores env/hardware
/// detection. Benches wire their --threads flag here.
void set_default_threads(std::size_t n);

/// A fixed, work-stealing-free pool of `threads - 1` worker threads (the
/// caller of for_each participates as the `threads`-th). Workers sleep on
/// a condition variable between jobs; one job runs at a time and
/// overlapping for_each calls from distinct threads are serialized.
class ThreadPool {
 public:
  /// `threads` is the total parallelism including the calling thread;
  /// ThreadPool(1) spawns no workers and runs everything inline.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism: workers + the participating caller.
  std::size_t size() const;

  /// Runs fn(i) for every i in [0, n), across at most max_threads threads
  /// (capped by size()). Blocks until every index has run. If fn throws,
  /// the remaining indices are abandoned, the pool drains, and the first
  /// exception is rethrown here; the pool stays usable afterwards.
  /// Calls made from inside a running job execute inline (serially) to
  /// stay deadlock-free.
  void for_each(std::size_t n, std::size_t max_threads,
                const std::function<void(std::size_t)>& fn);

  /// Grows the pool (while idle) so size() >= threads. Never shrinks.
  void ensure_size(std::size_t threads);

  /// The process-wide pool behind parallel_for, built on first use and
  /// grown on demand.
  static ThreadPool& global();

 private:
  void worker_loop();
  void run_indices(const std::function<void(std::size_t)>& fn,
                   std::size_t n);

  // All job state is FEMTOCR_GUARDED_BY(mutex_) and checked at compile
  // time by the CI thread-safety job; only the index cursor is an atomic
  // outside the capability (workers race on it by design, relaxed order —
  // it decides *when* an index runs, never *what* is computed).
  mutable Mutex mutex_;
  CondVar wake_;  ///< workers wait here for a job
  CondVar done_;  ///< for_each waits here for completion
  std::vector<std::thread> workers_ FEMTOCR_GUARDED_BY(mutex_);
  const std::function<void(std::size_t)>* fn_ FEMTOCR_GUARDED_BY(mutex_) =
      nullptr;
  std::size_t n_ FEMTOCR_GUARDED_BY(mutex_) = 0;
  /// Worker participation tickets remaining.
  std::size_t slots_ FEMTOCR_GUARDED_BY(mutex_) = 0;
  /// Workers currently inside the job.
  std::size_t active_ FEMTOCR_GUARDED_BY(mutex_) = 0;
  std::uint64_t job_id_ FEMTOCR_GUARDED_BY(mutex_) = 0;
  std::exception_ptr error_ FEMTOCR_GUARDED_BY(mutex_);
  bool stop_ FEMTOCR_GUARDED_BY(mutex_) = false;
  std::atomic<std::size_t> next_{0};
};

/// Runs fn(i) for i in [0, n) using `threads` threads (0 = default_threads()).
/// Deterministic-by-construction: see the file comment.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace femtocr::util
