// Deterministic, splittable random-number generation.
//
// Every stochastic component in the library draws from a util::Rng handed to
// it by its owner; nothing reads global entropy. This makes every experiment
// reproducible bit-for-bit from a single seed, and lets multi-run experiments
// derive independent per-run streams via split().
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace femtocr::util {

/// A seeded pseudo-random generator wrapping std::mt19937_64 with the
/// distribution helpers the simulator needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n) — n must be positive.
  std::size_t index(std::size_t n);

  /// Bernoulli draw: true with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential with the given mean (mean > 0).
  double exponential(double mean);

  /// Standard normal.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Derive an independent child generator. The child stream is a
  /// deterministic function of (this seed, salt, #splits so far), so
  /// repeated runs produce identical substreams.
  Rng split(std::uint64_t salt = 0x9e3779b97f4a7c15ULL);

  /// Fisher–Yates shuffle of an index vector [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  std::uint64_t seed() const { return seed_; }

  /// Raw 64-bit draw (used by split and tests).
  std::uint64_t next_u64() { return engine_(); }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::uint64_t seed_;
  std::uint64_t splits_ = 0;
};

}  // namespace femtocr::util
