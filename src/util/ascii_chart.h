// ASCII line charts for bench output.
//
// The bench binaries regenerate the paper's figures as tables; this module
// additionally draws them as terminal charts so the curve shapes (who wins,
// where curves cross, where they flatten) are visible at a glance in the
// bench logs. Multiple series share one canvas; each series gets a marker
// character and a legend entry.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace femtocr::util {

struct ChartSeries {
  std::string name;
  std::vector<double> ys;  ///< one value per x position
  char marker = '*';
};

class AsciiChart {
 public:
  /// `xs` are the shared x positions (printed under the canvas).
  AsciiChart(std::string title, std::vector<double> xs);

  /// Adds a series; must have one y per x. Markers are assigned from
  /// "*o+x#@" in order when not set explicitly.
  void add_series(std::string name, std::vector<double> ys);

  /// Renders the chart: `height` canvas rows plus axes and legend. The
  /// y-range is padded 5% beyond the data extremes.
  void print(std::ostream& os, std::size_t height = 16,
             std::size_t width = 64) const;

 private:
  std::string title_;
  std::vector<double> xs_;
  std::vector<ChartSeries> series_;
};

}  // namespace femtocr::util
