// Structured span tracing: scoped request-level spans recorded into
// per-thread ring buffers and exported as Chrome trace-event JSON that
// Perfetto / chrome://tracing load directly.
//
// Design contract (the metrics layer's, applied to spans):
//
//  * **Per-thread rings.** Each thread owns one ring buffer; a span write
//    is two monotonic_now_ns() calls plus one in-place slot store — no
//    locks, no allocation on the steady state. Rings keep the newest
//    events; overwritten history is counted and exported as
//    `dropped_events`, never silently lost.
//  * **Kill switch.** FEMTOCR_TRACE (off by default; "1"/"on"/"true"
//    enables) parsed once like FEMTOCR_METRICS. When off every trace op —
//    spans, anomaly notes, flight recording — is a relaxed load and a
//    branch: zero clock reads, zero ring writes. set_trace_enabled()
//    overrides the environment at runtime (--trace-out turns tracing on
//    unless the environment explicitly disabled it).
//  * **Observability never perturbs the simulation.** Tracing draws no
//    randomness and writes nothing to stdout; stdout is byte-identical
//    across FEMTOCR_TRACE on/off and any --threads value (pinned by
//    tests/test_trace_spans.cpp). Span *durations* are wall-clock and
//    vary run to run; span *counts per name* are thread-count invariant.
//  * **Parent linkage.** A thread-local span stack supplies each span's
//    nesting depth; Chrome's viewer reconstructs the tree from time
//    containment per tid, so "X" (complete) events are all we emit.
//
// The flight recorder rides on the rings: solver and fault sites tag the
// in-flight slot via trace_note_anomaly(), and the simulator's slot
// boundary harvests the notes — a tagged slot's span subtree plus its
// solver-context args is frozen into a bounded postmortem pool and dumped
// alongside the trace (the slowest-N slots are kept in a separate pool so
// a clean run reports exactly zero anomalies).
//
// Span catalogue and JSON schema: docs/OBSERVABILITY.md. Typical usage:
//
//   util::ScopedSpan span("core.dual.solve");
//   ...
//   span.arg("iterations", static_cast<double>(result.iterations));
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "util/metrics.h"

namespace femtocr::util {

/// Maximum key=value args per span; extras are dropped (spans stay POD).
inline constexpr std::size_t kMaxSpanArgs = 6;

namespace trace_detail {

/// -1 = not yet resolved from the environment, 0 = off, 1 = on.
extern std::atomic<int> g_enabled;

/// Resolves FEMTOCR_TRACE once and caches the result in g_enabled.
bool enabled_slow();

struct ThreadRing;

/// The calling thread's ring, created and registered on first use.
ThreadRing* this_thread_ring();

}  // namespace trace_detail

/// True when FEMTOCR_TRACE=1/on/true or set_trace_enabled(true). Unlike
/// metrics, tracing defaults OFF — recording costs clock reads per span.
inline bool trace_enabled() {
  const int e = trace_detail::g_enabled.load(std::memory_order_relaxed);
  return e >= 0 ? e != 0 : trace_detail::enabled_slow();
}

/// Runtime override of the kill switch (wins over the environment).
void set_trace_enabled(bool on);

/// True iff the environment EXPLICITLY disabled tracing (FEMTOCR_TRACE set
/// to 0/off/false). --trace-out enables tracing at startup unless this
/// holds — an explicit off always wins so kill-switch A/B diffs stay
/// trivial to script.
bool trace_env_disabled();

// ------------------------------------------------------------------- span ----

/// RAII span. When tracing is disabled at construction the clock is never
/// read and the destructor is a null check. `name` (and every arg key)
/// must point at storage that outlives the process — string literals.
class ScopedSpan {
 public:
  struct Arg {
    const char* key = nullptr;
    double value = 0.0;
  };

  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a numeric arg (exported under "args" in the trace JSON).
  /// No-op when the span is disabled or kMaxSpanArgs are already set.
  void arg(const char* key, double value) {
    if (ring_ == nullptr || num_args_ >= kMaxSpanArgs) return;
    args_[num_args_].key = key;
    args_[num_args_].value = value;
    ++num_args_;
  }

 private:
  trace_detail::ThreadRing* ring_;  ///< null when disabled at construction
  const char* name_;
  std::int64_t begin_ns_ = 0;
  std::uint32_t depth_ = 0;
  std::uint32_t num_args_ = 0;
  Arg args_[kMaxSpanArgs];
};

// -------------------------------------------------------- flight recorder ----

/// Tags the calling thread's in-flight slot as anomalous. `tag` must be a
/// string literal (it is stored by pointer); use the metric counter name
/// of the triggering event, e.g. "core.dual.fallback.best_iterate".
/// No-op when tracing is disabled.
void trace_note_anomaly(const char* tag);

/// Opaque cursor into the calling thread's ring, taken at a slot boundary
/// so trace_flight_record_slot() can freeze exactly this slot's events.
/// Returns 0 when tracing is disabled.
std::uint64_t trace_slot_mark();

/// Identity of the slot being closed, attached to every capture.
struct SlotPostmortemContext {
  std::uint64_t run = 0;
  std::uint64_t slot = 0;
  std::int64_t latency_ns = 0;  ///< the slot's decision latency
};

/// Slot-boundary harvest: consumes the thread's pending anomaly notes.
/// When any are pending, the events recorded since `mark` are frozen into
/// the anomaly pool (bounded; overflow counted, never blocking). Every
/// slot is also offered to the separate slowest-N pool keyed on
/// latency_ns. No-op when tracing is disabled.
void trace_flight_record_slot(const SlotPostmortemContext& ctx,
                              std::uint64_t mark);

/// Number of anomaly captures currently held (clean runs: exactly 0).
std::size_t trace_anomaly_captures();
/// Anomalies triggered in total, including ones the bounded pool dropped.
std::uint64_t trace_anomalies_total();

// ------------------------------------------------------- snapshot / export ---

/// Folded per-name span counts plus ring-drop accounting. Counts cover
/// only events still resident in the rings; `dropped` is the number of
/// overwritten (lost) events across all rings.
struct TraceCounts {
  std::vector<std::pair<std::string, std::uint64_t>> per_name;
  std::uint64_t dropped = 0;
};

/// Name-sorted counts of resident events. Call while workers are
/// quiescent (after the replication pool joined) — rings are single-writer
/// and the fold does not lock them.
TraceCounts trace_counts();

/// Clears rings, pending notes, and both flight-recorder pools. Thread
/// registrations (and ring tids) survive, mirroring MetricsRegistry::reset.
void reset_trace();

/// Writes everything as one Chrome trace-event JSON document:
///   {"traceEvents": [{"name","ph":"X","ts","dur","pid","tid","args"}...],
///    "displayTimeUnit": "ns",
///    "femtocr": {"manifest": {...}, "span_counts": {...},
///                "dropped_events": N, "flight_recorder": {...}}}
/// ts/dur are microseconds (Chrome's unit), rebased to the earliest event.
/// Schema gated by tools/trace_report.py --check.
void write_trace_json(std::ostream& os, const MetricsManifest& manifest);

/// write_trace_json to `path`; logs a warning and returns false on I/O
/// failure instead of throwing.
bool write_trace_file(const std::string& path,
                      const MetricsManifest& manifest);

}  // namespace femtocr::util
