// ASCII + CSV table rendering for bench output.
//
// Every bench binary regenerating a paper figure prints (a) a human-readable
// aligned table and (b) machine-readable CSV rows prefixed with "csv," so a
// plotting script can grep them out of the combined bench log.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace femtocr::util {

/// A simple column-aligned table. Cells are strings; numeric helpers format
/// with fixed precision. Rendering never throws on well-formed input.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Formats `v` with `precision` decimals and returns it as a cell string.
  static std::string num(double v, int precision = 2);

  /// Renders with box-drawing separators to `os`.
  void print(std::ostream& os) const;

  /// Renders CSV lines "csv,<title>,<h1>,<h2>,..." then one line per row.
  void print_csv(std::ostream& os, const std::string& title) const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats "mean ± ci" with the given precision, e.g. "35.12 ± 0.08".
std::string with_ci(double mean, double ci, int precision = 2);

}  // namespace femtocr::util
