// Online statistics and confidence intervals.
//
// The paper reports each point as the average of 10 simulation runs with a
// 95% confidence interval; RunningStat + confidence_interval95 reproduce that
// exact bookkeeping (Student-t, n-1 degrees of freedom).
#pragma once

#include <cstddef>
#include <vector>

namespace femtocr::util {

/// Welford online accumulator for mean/variance. Numerically stable; O(1)
/// per observation, no sample storage.
class RunningStat {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Unbiased sample variance (n-1 denominator); 0 for n < 2.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean; 0 for n < 2.
  double stderr_mean() const;
  double min() const;
  double max() const;

  /// Merge another accumulator into this one (parallel Welford).
  void merge(const RunningStat& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Two-sided Student-t critical value at 95% confidence for the given degrees
/// of freedom (exact table for df <= 30, normal approximation beyond).
double t_critical95(std::size_t df);

/// Half-width of the 95% confidence interval on the mean of `s`.
/// Returns 0 when fewer than two samples have been observed.
double confidence_interval95(const RunningStat& s);

/// Mean of a sample vector (0 for empty input).
double mean_of(const std::vector<double>& xs);

}  // namespace femtocr::util
