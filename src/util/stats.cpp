#include "util/stats.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

namespace femtocr::util {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::mean() const { return n_ > 0 ? mean_ : 0.0; }

double RunningStat::variance() const {
  // m2_ is mathematically >= 0 but the parallel-Welford merge can leave a
  // tiny negative residue from cancellation; clamp so stddev() never
  // produces NaN via sqrt of a negative.
  return n_ > 1 ? std::max(0.0, m2_) / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::stderr_mean() const {
  return n_ > 1 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

double RunningStat::min() const { return n_ > 0 ? min_ : 0.0; }
double RunningStat::max() const { return n_ > 0 ? max_ : 0.0; }

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double t_critical95(std::size_t df) {
  // Two-sided 0.975 quantiles of Student's t distribution.
  static constexpr std::array<double, 31> kTable = {
      0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
      2.306,  2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131,
      2.120,  2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069,
      2.064,  2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0.0;
  if (df < kTable.size()) return kTable[df];
  return 1.96;  // normal approximation for large df
}

double confidence_interval95(const RunningStat& s) {
  if (s.count() < 2) return 0.0;
  return t_critical95(s.count() - 1) * s.stderr_mean();
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

}  // namespace femtocr::util
