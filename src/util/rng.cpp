#include "util/rng.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace femtocr::util {

std::size_t Rng::index(std::size_t n) {
  FEMTOCR_CHECK(n > 0, "Rng::index requires n > 0");
  std::uniform_int_distribution<std::size_t> dist(0, n - 1);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  FEMTOCR_CHECK(mean > 0.0, "exponential mean must be positive");
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

Rng Rng::split(std::uint64_t salt) {
  ++splits_;
  // Mix the parent seed, the salt, and the split counter through a
  // SplitMix64-style finalizer so sibling streams are decorrelated.
  std::uint64_t z = seed_ + salt * 0xbf58476d1ce4e5b9ULL + splits_;
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return Rng(z);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    std::swap(p[i - 1], p[index(i)]);
  }
  return p;
}

}  // namespace femtocr::util
