// Monotonic wall-clock access for the whole tree.
//
// This header and timer.cpp are the ONLY places in the repository allowed
// to touch the raw std::chrono clocks (enforced by the no-raw-chrono-clock
// lint rule). Everything that needs wall time — the bench harness, the
// metrics layer's scoped timers — goes through monotonic_now_ns() or a
// Stopwatch, so "how the tree measures time" has exactly one definition.
//
// Wall-clock readings are inherently nondeterministic; nothing printed to
// stdout may ever depend on them (the determinism contract of
// util/parallel.h). Timings flow to stderr or to --metrics-out JSON only.
#pragma once

#include <cstdint>
#include <string>

namespace femtocr::util {

/// Monotonic timestamp in nanoseconds (steady_clock under the hood). The
/// epoch is unspecified; only differences are meaningful.
std::int64_t monotonic_now_ns();

/// Current wall-clock time as a UTC ISO-8601 string ("2026-02-14T09:30:01Z",
/// system_clock under the hood). Provenance metadata for the JSON manifests
/// only — like every wall-clock reading, it must never reach stdout.
std::string wall_clock_iso8601();

/// Restartable wall-clock stopwatch over monotonic_now_ns().
class Stopwatch {
 public:
  Stopwatch() : start_ns_(monotonic_now_ns()) {}

  /// Re-arms the stopwatch at the current instant.
  void restart() { start_ns_ = monotonic_now_ns(); }

  std::int64_t elapsed_ns() const { return monotonic_now_ns() - start_ns_; }
  double elapsed_seconds() const {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  std::int64_t start_ns_;
};

}  // namespace femtocr::util
