// Small numeric helpers shared across layers (header-only).
#pragma once

#include <algorithm>
#include <cmath>

namespace femtocr::util {

/// Projection onto the nonnegative reals: [x]^+ in the paper's notation.
inline double pos(double x) { return x > 0.0 ? x : 0.0; }

/// Clamp into [lo, hi].
inline double clamp(double x, double lo, double hi) {
  return std::min(std::max(x, lo), hi);
}

/// True if |a-b| <= tol (absolute comparison; operands are O(1)-scaled
/// probabilities, PSNRs in dB, or slot fractions throughout this library).
inline bool near(double a, double b, double tol = 1e-9) {
  return std::fabs(a - b) <= tol;
}

/// Squared Euclidean norm of the difference of two equal-length vectors,
/// used for the dual-variable stopping rule  sum_i (l_i' - l_i)^2 <= phi.
template <typename Vec>
double squared_distance(const Vec& a, const Vec& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace femtocr::util
