#include "util/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace femtocr::util {

namespace {
constexpr char kMarkers[] = "*o+x#@";
}

AsciiChart::AsciiChart(std::string title, std::vector<double> xs)
    : title_(std::move(title)), xs_(std::move(xs)) {
  FEMTOCR_CHECK(xs_.size() >= 2, "a chart needs at least two x positions");
}

void AsciiChart::add_series(std::string name, std::vector<double> ys) {
  FEMTOCR_CHECK(ys.size() == xs_.size(),
                "series must provide one value per x position");
  ChartSeries s;
  s.name = std::move(name);
  s.ys = std::move(ys);
  s.marker = kMarkers[series_.size() % (sizeof(kMarkers) - 1)];
  series_.push_back(std::move(s));
}

void AsciiChart::print(std::ostream& os, std::size_t height,
                       std::size_t width) const {
  FEMTOCR_CHECK(!series_.empty(), "chart has no series");
  FEMTOCR_CHECK(height >= 4 && width >= 8, "canvas too small");

  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (const auto& s : series_) {
    for (double y : s.ys) {
      lo = std::min(lo, y);
      hi = std::max(hi, y);
    }
  }
  if (hi - lo < 1e-12) {  // flat data: open a window around it
    hi += 0.5;
    lo -= 0.5;
  }
  const double pad = 0.05 * (hi - lo);
  lo -= pad;
  hi += pad;

  std::vector<std::string> canvas(height, std::string(width, ' '));
  auto col_of = [&](std::size_t i) {
    return static_cast<std::size_t>(
        std::lround(static_cast<double>(i) /
                    static_cast<double>(xs_.size() - 1) *
                    static_cast<double>(width - 1)));
  };
  auto row_of = [&](double y) {
    const double frac = (y - lo) / (hi - lo);
    const auto r = static_cast<std::size_t>(
        std::lround((1.0 - frac) * static_cast<double>(height - 1)));
    return std::min(r, height - 1);
  };

  for (const auto& s : series_) {
    // Line segments between consecutive points, then markers on top.
    for (std::size_t i = 0; i + 1 < xs_.size(); ++i) {
      const auto c0 = col_of(i), c1 = col_of(i + 1);
      for (std::size_t c = c0; c <= c1; ++c) {
        const double t = c1 == c0 ? 0.0
                                  : static_cast<double>(c - c0) /
                                        static_cast<double>(c1 - c0);
        const double y = s.ys[i] + t * (s.ys[i + 1] - s.ys[i]);
        char& cell = canvas[row_of(y)][c];
        if (cell == ' ') cell = '.';
      }
    }
    for (std::size_t i = 0; i < xs_.size(); ++i) {
      canvas[row_of(s.ys[i])][col_of(i)] = s.marker;
    }
  }

  os << title_ << '\n';
  for (std::size_t r = 0; r < height; ++r) {
    const double y = hi - (hi - lo) * static_cast<double>(r) /
                              static_cast<double>(height - 1);
    os << std::setw(8) << std::fixed << std::setprecision(2) << y << " |"
       << canvas[r] << '\n';
  }
  os << std::string(8, ' ') << " +" << std::string(width, '-') << '\n';
  std::ostringstream xlabels;
  xlabels << std::setw(8) << ' ' << "  ";
  std::string labels(width, ' ');
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    std::ostringstream v;
    v << std::setprecision(3) << xs_[i];
    const std::string text = v.str();
    std::size_t start = col_of(i);
    if (start + text.size() > width) start = width - text.size();
    for (std::size_t k = 0; k < text.size(); ++k) {
      labels[start + k] = text[k];
    }
  }
  os << xlabels.str() << labels << '\n';
  os << "  legend:";
  for (const auto& s : series_) {
    os << "  " << s.marker << " = " << s.name;
  }
  os << '\n';
}

}  // namespace femtocr::util
