// Minimal command-line argument parsing for the tools and benches.
//
// Supports "--key=value" and boolean "--flag" forms. Unknown keys are
// collected so callers can reject typos with a helpful message. No
// external dependencies; order-independent.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace femtocr::util {

class Args {
 public:
  /// Parses argv[1..). Throws std::logic_error on malformed tokens (not
  /// starting with "--").
  Args(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  /// Typed getters with defaults. Throw std::logic_error when the value
  /// does not parse as the requested type.
  std::string get(const std::string& key, const std::string& fallback) const;
  double get(const std::string& key, double fallback) const;
  std::int64_t get(const std::string& key, std::int64_t fallback) const;
  bool get(const std::string& key, bool fallback) const;

  /// Keys present on the command line but never queried via get()/has().
  /// Call after all gets to implement strict unknown-flag rejection.
  std::vector<std::string> unconsumed() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> consumed_;
};

}  // namespace femtocr::util
