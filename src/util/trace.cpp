#include "util/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <map>
#include <memory>
#include <ostream>
#include <string_view>

#include "util/log.h"
#include "util/parallel.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace femtocr::util {

namespace trace_detail {

std::atomic<int> g_enabled{-1};

namespace {

/// True when the FEMTOCR_TRACE value is in the explicit "off" set (shared
/// by enabled_slow and trace_env_disabled so the two can never disagree).
bool is_off_value(std::string_view v) {
  return v == "0" || v == "off" || v == "false" || v == "OFF" || v == "FALSE";
}

bool is_on_value(std::string_view v) {
  return v == "1" || v == "on" || v == "true" || v == "ON" || v == "TRUE";
}

}  // namespace

bool enabled_slow() {
  // FEMTOCR_METRICS precedence style, but the default is OFF: recording a
  // span costs two clock reads, so tracing is strictly opt-in (--trace-out
  // or the environment). Unrecognized values stay off.
  bool on = false;
  if (const char* env = std::getenv("FEMTOCR_TRACE")) {
    on = is_on_value(env);
  }
  int expected = -1;
  g_enabled.compare_exchange_strong(expected, on ? 1 : 0);
  return g_enabled.load(std::memory_order_relaxed) != 0;
}

namespace {

/// Newest-events-win ring capacity per thread. FEMTOCR_TRACE_BUFFER
/// overrides (events per thread, clamped); the default comfortably holds a
/// smoke-sized run on a single worker so thread-count invariance checks
/// never see drops.
constexpr std::size_t kDefaultRingCapacity = 1 << 16;
constexpr std::size_t kMinRingCapacity = 1 << 12;
constexpr std::size_t kMaxRingCapacity = 1 << 22;

/// Bounds on the postmortem pools: captures are meant for a human reading
/// one bad slot, not for bulk export.
constexpr std::size_t kMaxAnomalyCaptures = 16;
constexpr std::size_t kMaxSlowSlots = 8;
constexpr std::size_t kMaxCapturedEventsPerSlot = 512;
constexpr std::size_t kMaxPendingNotes = 16;

std::size_t ring_capacity_from_env() {
  std::size_t cap = kDefaultRingCapacity;
  if (const char* env = std::getenv("FEMTOCR_TRACE_BUFFER")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      cap = static_cast<std::size_t>(v);
    }
  }
  return std::clamp(cap, kMinRingCapacity, kMaxRingCapacity);
}

}  // namespace

/// One completed span, written in place at destructor time.
struct TraceEvent {
  const char* name = nullptr;
  std::int64_t begin_ns = 0;
  std::int64_t dur_ns = 0;
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;
  std::uint32_t num_args = 0;
  ScopedSpan::Arg args[kMaxSpanArgs];
};

/// Single-writer span ring plus the owning thread's span-stack depth and
/// pending anomaly notes. Written only by the owning thread; read by the
/// exporting thread while the pool is quiescent (the replication pool's
/// join provides the happens-before edge, same as the metrics fold).
struct ThreadRing {
  ThreadRing(std::uint32_t id, std::size_t cap) : tid(id), events(cap) {}

  const std::uint32_t tid;
  std::vector<TraceEvent> events;  ///< fixed capacity, events.size() slots
  std::uint64_t head = 0;          ///< events ever pushed; slot = head % cap
  std::uint32_t depth = 0;         ///< current span nesting depth
  std::vector<const char*> notes;  ///< pending anomaly tags for this slot

  std::size_t capacity() const { return events.size(); }
  /// Sequence number of the oldest event still resident.
  std::uint64_t resident_begin() const {
    return head > events.size() ? head - events.size() : 0;
  }
};

namespace {

/// One frozen slot: identity, trigger tags, and the span subtree.
struct CapturedSlot {
  std::uint64_t run = 0;
  std::uint64_t slot = 0;
  std::int64_t latency_ns = 0;
  std::vector<const char*> triggers;
  std::vector<TraceEvent> events;
};

struct TraceRegistry {
  // Guards registration and the recorder pools only — ring event writes
  // stay lock-free on the owning thread.
  mutable Mutex mutex;
  std::vector<std::unique_ptr<ThreadRing>> rings FEMTOCR_GUARDED_BY(mutex);
  std::size_t ring_capacity FEMTOCR_GUARDED_BY(mutex) = 0;
  std::vector<CapturedSlot> anomalies FEMTOCR_GUARDED_BY(mutex);
  std::uint64_t anomalies_total FEMTOCR_GUARDED_BY(mutex) = 0;
  std::vector<CapturedSlot> slow_slots FEMTOCR_GUARDED_BY(mutex);
};

TraceRegistry& registry() {
  static TraceRegistry r;
  return r;
}

}  // namespace

ThreadRing* this_thread_ring() {
  thread_local ThreadRing* ring = nullptr;
  if (ring == nullptr) {
    TraceRegistry& reg = registry();
    MutexLock lock(reg.mutex);
    if (reg.ring_capacity == 0) reg.ring_capacity = ring_capacity_from_env();
    const auto tid = static_cast<std::uint32_t>(reg.rings.size());
    reg.rings.push_back(std::make_unique<ThreadRing>(tid, reg.ring_capacity));
    ring = reg.rings.back().get();
  }
  return ring;
}

}  // namespace trace_detail

void set_trace_enabled(bool on) {
  trace_detail::g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

bool trace_env_disabled() {
  const char* env = std::getenv("FEMTOCR_TRACE");
  return env != nullptr && trace_detail::is_off_value(env);
}

// ------------------------------------------------------------------- span ----

ScopedSpan::ScopedSpan(const char* name)
    : ring_(trace_enabled() ? trace_detail::this_thread_ring() : nullptr),
      name_(name) {
  if (ring_ == nullptr) return;
  depth_ = ring_->depth++;
  begin_ns_ = monotonic_now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (ring_ == nullptr) return;
  const std::int64_t end_ns = monotonic_now_ns();
  trace_detail::ThreadRing& r = *ring_;
  --r.depth;
  trace_detail::TraceEvent& e = r.events[r.head % r.capacity()];
  e.name = name_;
  e.begin_ns = begin_ns_;
  e.dur_ns = end_ns - begin_ns_;
  e.tid = r.tid;
  e.depth = depth_;
  e.num_args = num_args_;
  for (std::uint32_t i = 0; i < num_args_; ++i) e.args[i] = args_[i];
  ++r.head;
}

// -------------------------------------------------------- flight recorder ----

void trace_note_anomaly(const char* tag) {
  if (!trace_enabled()) return;
  trace_detail::ThreadRing* r = trace_detail::this_thread_ring();
  if (r->notes.size() < trace_detail::kMaxPendingNotes) r->notes.push_back(tag);
}

std::uint64_t trace_slot_mark() {
  if (!trace_enabled()) return 0;
  return trace_detail::this_thread_ring()->head;
}

void trace_flight_record_slot(const SlotPostmortemContext& ctx,
                              std::uint64_t mark) {
  if (!trace_enabled()) return;
  trace_detail::ThreadRing* r = trace_detail::this_thread_ring();

  // Consume the pending notes, deduplicating while preserving first-seen
  // order (fault sites may fire the same tag once per user).
  std::vector<const char*> triggers;
  triggers.swap(r->notes);
  auto last = triggers.begin();
  for (auto it = triggers.begin(); it != triggers.end(); ++it) {
    if (std::find_if(triggers.begin(), last, [&](const char* seen) {
          return std::string_view(seen) == std::string_view(*it);
        }) == last) {
      *last++ = *it;
    }
  }
  triggers.erase(last, triggers.end());

  const bool anomalous = !triggers.empty();
  trace_detail::TraceRegistry& reg = trace_detail::registry();
  MutexLock lock(reg.mutex);
  const bool want_slow =
      reg.slow_slots.size() < trace_detail::kMaxSlowSlots ||
      std::any_of(reg.slow_slots.begin(), reg.slow_slots.end(),
                  [&](const trace_detail::CapturedSlot& s) {
                    return ctx.latency_ns > s.latency_ns;
                  });
  if (!anomalous && !want_slow) return;

  // Freeze this slot's span subtree: everything recorded since `mark`
  // that the ring still holds, newest-biased when the slot overflowed the
  // per-capture bound.
  trace_detail::CapturedSlot cap;
  cap.run = ctx.run;
  cap.slot = ctx.slot;
  cap.latency_ns = ctx.latency_ns;
  cap.triggers = triggers;
  std::uint64_t lo = std::max(mark, r->resident_begin());
  if (r->head - lo > trace_detail::kMaxCapturedEventsPerSlot) {
    lo = r->head - trace_detail::kMaxCapturedEventsPerSlot;
  }
  cap.events.reserve(static_cast<std::size_t>(r->head - lo));
  for (std::uint64_t seq = lo; seq < r->head; ++seq) {
    cap.events.push_back(r->events[seq % r->capacity()]);
  }

  if (anomalous) {
    ++reg.anomalies_total;
    if (reg.anomalies.size() < trace_detail::kMaxAnomalyCaptures) {
      reg.anomalies.push_back(cap);
    }
  }
  if (reg.slow_slots.size() < trace_detail::kMaxSlowSlots) {
    reg.slow_slots.push_back(std::move(cap));
  } else {
    auto slowest_min = std::min_element(
        reg.slow_slots.begin(), reg.slow_slots.end(),
        [](const trace_detail::CapturedSlot& a,
           const trace_detail::CapturedSlot& b) {
          return a.latency_ns < b.latency_ns;
        });
    if (ctx.latency_ns > slowest_min->latency_ns) {
      *slowest_min = std::move(cap);
    }
  }
}

std::size_t trace_anomaly_captures() {
  trace_detail::TraceRegistry& reg = trace_detail::registry();
  MutexLock lock(reg.mutex);
  return reg.anomalies.size();
}

std::uint64_t trace_anomalies_total() {
  trace_detail::TraceRegistry& reg = trace_detail::registry();
  MutexLock lock(reg.mutex);
  return reg.anomalies_total;
}

// ------------------------------------------------------- snapshot / export ---

TraceCounts trace_counts() {
  trace_detail::TraceRegistry& reg = trace_detail::registry();
  MutexLock lock(reg.mutex);
  std::map<std::string, std::uint64_t> by_name;
  TraceCounts out;
  for (const auto& ring : reg.rings) {
    out.dropped += ring->resident_begin();
    for (std::uint64_t seq = ring->resident_begin(); seq < ring->head; ++seq) {
      ++by_name[ring->events[seq % ring->capacity()].name];
    }
  }
  out.per_name.assign(by_name.begin(), by_name.end());
  return out;
}

void reset_trace() {
  trace_detail::TraceRegistry& reg = trace_detail::registry();
  MutexLock lock(reg.mutex);
  for (const auto& ring : reg.rings) {
    ring->head = 0;
    ring->notes.clear();
  }
  reg.anomalies.clear();
  reg.anomalies_total = 0;
  reg.slow_slots.clear();
}

namespace {

// Local copies of the metrics JSON helpers (theirs live in an anonymous
// namespace by design — the writer is each subsystem's own business).
void json_escape(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* kHex = "0123456789abcdef";
          os << "\\u00" << kHex[(c >> 4) & 0xF] << kHex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
}

void json_string(std::ostream& os, std::string_view s) {
  os << '"';
  json_escape(os, s);
  os << '"';
}

void json_number(std::ostream& os, double v) {
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << "null";
  }
}

const char* build_type_string() {
#ifdef FEMTOCR_BUILD_TYPE
  return FEMTOCR_BUILD_TYPE;
#elif defined(NDEBUG)
  return "optimized";
#else
  return "debug";
#endif
}

/// Chrome wants microseconds; emit rebased nanoseconds as "us.nnn" in
/// fixed-point so no float formatting can lose a nanosecond.
void json_us(std::ostream& os, std::int64_t ns) {
  if (ns < 0) ns = 0;
  os << (ns / 1000) << '.' << std::setw(3) << std::setfill('0') << (ns % 1000)
     << std::setfill(' ');
}

void write_event(std::ostream& os, const trace_detail::TraceEvent& e,
                 std::int64_t t0, bool chrome_shape) {
  os << '{';
  if (chrome_shape) {
    os << "\"name\": ";
    json_string(os, e.name);
    os << ", \"ph\": \"X\", \"ts\": ";
    json_us(os, e.begin_ns - t0);
    os << ", \"dur\": ";
    json_us(os, e.dur_ns);
    os << ", \"pid\": 1, \"tid\": " << e.tid;
  } else {
    os << "\"name\": ";
    json_string(os, e.name);
    os << ", \"ts\": ";
    json_us(os, e.begin_ns - t0);
    os << ", \"dur\": ";
    json_us(os, e.dur_ns);
    os << ", \"tid\": " << e.tid;
  }
  os << ", \"args\": {\"depth\": " << e.depth;
  for (std::uint32_t a = 0; a < e.num_args; ++a) {
    os << ", ";
    json_string(os, e.args[a].key);
    os << ": ";
    json_number(os, e.args[a].value);
  }
  os << "}}";
}

void write_captured_slot(std::ostream& os, const trace_detail::CapturedSlot& c,
                         std::int64_t t0) {
  os << "{\"run\": " << c.run << ", \"slot\": " << c.slot
     << ", \"latency_ns\": " << c.latency_ns << ", \"triggers\": [";
  for (std::size_t i = 0; i < c.triggers.size(); ++i) {
    if (i > 0) os << ", ";
    json_string(os, c.triggers[i]);
  }
  os << "], \"events\": [";
  for (std::size_t i = 0; i < c.events.size(); ++i) {
    if (i > 0) os << ", ";
    write_event(os, c.events[i], t0, /*chrome_shape=*/false);
  }
  os << "]}";
}

}  // namespace

void write_trace_json(std::ostream& os, const MetricsManifest& manifest) {
  // Snapshot under the registry lock: resident events per ring (tid
  // order), both recorder pools, per-name counts, drop totals.
  std::vector<trace_detail::TraceEvent> events;
  std::vector<trace_detail::CapturedSlot> anomalies;
  std::vector<trace_detail::CapturedSlot> slow_slots;
  std::map<std::string, std::uint64_t> span_counts;
  std::uint64_t dropped = 0;
  std::uint64_t anomalies_total = 0;
  {
    trace_detail::TraceRegistry& reg = trace_detail::registry();
    MutexLock lock(reg.mutex);
    std::size_t resident = 0;
    for (const auto& ring : reg.rings) {
      resident += static_cast<std::size_t>(ring->head -
                                           ring->resident_begin());
    }
    events.reserve(resident);
    for (const auto& ring : reg.rings) {
      dropped += ring->resident_begin();
      for (std::uint64_t seq = ring->resident_begin(); seq < ring->head;
           ++seq) {
        const trace_detail::TraceEvent& e = ring->events[seq % ring->capacity()];
        events.push_back(e);
        ++span_counts[e.name];
      }
    }
    anomalies = reg.anomalies;
    slow_slots = reg.slow_slots;
    anomalies_total = reg.anomalies_total;
  }
  std::sort(slow_slots.begin(), slow_slots.end(),
            [](const trace_detail::CapturedSlot& a,
               const trace_detail::CapturedSlot& b) {
              return a.latency_ns > b.latency_ns;
            });

  // Rebase timestamps to the earliest event so viewers start near zero.
  std::int64_t t0 = std::numeric_limits<std::int64_t>::max();
  for (const auto& e : events) t0 = std::min(t0, e.begin_ns);
  for (const auto& c : anomalies) {
    for (const auto& e : c.events) t0 = std::min(t0, e.begin_ns);
  }
  for (const auto& c : slow_slots) {
    for (const auto& e : c.events) t0 = std::min(t0, e.begin_ns);
  }
  if (t0 == std::numeric_limits<std::int64_t>::max()) t0 = 0;

  const auto old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << "{\n\"traceEvents\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    os << (i > 0 ? ",\n " : "\n ");
    write_event(os, events[i], t0, /*chrome_shape=*/true);
  }
  os << (events.empty() ? "],\n" : "\n],\n");
  os << "\"displayTimeUnit\": \"ns\",\n";

  os << "\"femtocr\": {\n  \"manifest\": {\n";
  os << "    \"seed\": " << manifest.seed << ",\n";
  os << "    \"threads\": " << manifest.threads << ",\n";
  os << "    \"scheme\": ";
  json_string(os, manifest.scheme);
  os << ",\n    \"build_type\": ";
  json_string(os, build_type_string());
  os << ",\n    \"trace_enabled\": " << (trace_enabled() ? "true" : "false");
  os << ",\n    \"git_sha\": ";
  json_string(os, manifest.git_sha);
  os << ",\n    \"hostname\": ";
  json_string(os, manifest.hostname);
  os << ",\n    \"started_at\": ";
  json_string(os, manifest.started_at);
  os << ",\n    \"cli\": ";
  json_string(os, manifest.cli);
  os << "\n  },\n";

  os << "  \"span_counts\": {";
  bool first = true;
  for (const auto& [name, n] : span_counts) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    json_string(os, name);
    os << ": " << n;
  }
  os << (span_counts.empty() ? "},\n" : "\n  },\n");
  os << "  \"dropped_events\": " << dropped << ",\n";

  os << "  \"flight_recorder\": {\n";
  os << "    \"anomalies_total\": " << anomalies_total << ",\n";
  os << "    \"anomalies\": [";
  for (std::size_t i = 0; i < anomalies.size(); ++i) {
    os << (i > 0 ? ",\n     " : "\n     ");
    write_captured_slot(os, anomalies[i], t0);
  }
  os << (anomalies.empty() ? "],\n" : "\n    ],\n");
  os << "    \"slow_slots\": [";
  for (std::size_t i = 0; i < slow_slots.size(); ++i) {
    os << (i > 0 ? ",\n     " : "\n     ");
    write_captured_slot(os, slow_slots[i], t0);
  }
  os << (slow_slots.empty() ? "]\n" : "\n    ]\n");
  os << "  }\n}\n}\n";
  os.precision(old_precision);
}

bool write_trace_file(const std::string& path,
                      const MetricsManifest& manifest) {
  std::ofstream out(path);
  if (!out) {
    FEMTOCR_LOG_WARN << "cannot open trace output file: " << path;
    return false;
  }
  write_trace_json(out, manifest);
  return static_cast<bool>(out);
}

}  // namespace femtocr::util
