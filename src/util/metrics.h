// Process-wide metrics registry: named counters, log-bucketed histograms
// and wall-clock timers, cheap enough to live on the solver hot paths.
//
// Design contract (mirrors the replication engine in util/parallel.h):
//
//  * **Sharded writes.** Every metric object owns kMetricShards slots;
//    each thread writes the slot picked by its stable thread id, so the
//    hot-path cost is one thread-local read plus one relaxed atomic add on
//    a cache line that (up to shard aliasing) only this thread touches.
//    Shards fold in fixed shard-index order at collection time. Counter
//    totals and histogram bucket counts are integer sums, so folded totals
//    are identical for any thread count — only wall-clock timer *values*
//    vary run to run, which is why timers never feed stdout.
//  * **Observability is not allowed to perturb the simulation.** No metric
//    op draws randomness, takes a lock on the hot path, or writes to
//    stdout; enabling/disabling metrics cannot change any simulation
//    result (pinned by tests/test_determinism.cpp).
//  * **Kill switch.** FEMTOCR_METRICS=0 (or off/false), parsed once like
//    FEMTOCR_THREADS, turns every op into a checked no-op: one relaxed
//    atomic load and a branch, no clock reads, no shard writes.
//    set_metrics_enabled() overrides the environment at runtime (tests and
//    overhead measurements toggle it directly).
//
// Naming scheme: `layer.component.metric`, e.g. core.dual.iterations,
// spectrum.access.collisions, sim.slot.allocate. See docs/OBSERVABILITY.md
// for the full catalogue and the JSON export schema.
//
// Typical hot-path usage (the registry lookup happens once per site):
//
//   static util::Counter& c_iters =
//       util::metrics().counter("core.dual.iterations");
//   ...
//   c_iters.add(iterations);
//
//   static util::TimerStat& t_solve = util::metrics().timer("core.dual.solve");
//   util::ScopedTimer timer(t_solve);
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <vector>

#include "util/timer.h"

namespace femtocr::util {

class Args;

/// Number of write shards per metric. Thread ids alias onto shards modulo
/// this, so correctness never depends on the thread count; 32 covers the
/// replication pool on any realistic host without aliasing.
inline constexpr std::size_t kMetricShards = 32;

namespace metrics_detail {

/// -1 = not yet resolved from the environment, 0 = off, 1 = on.
extern std::atomic<int> g_enabled;

/// Resolves FEMTOCR_METRICS once and caches the result in g_enabled.
bool enabled_slow();

/// Stable per-thread shard slot in [0, kMetricShards).
std::size_t shard_index();

/// Relaxed compare-exchange add for pre-C++20-fetch_add portability.
void add_double(std::atomic<double>& target, double v);
/// Relaxed compare-exchange min/max folds.
void fold_min(std::atomic<double>& target, double v);
void fold_max(std::atomic<double>& target, double v);
void fold_max_u64(std::atomic<std::uint64_t>& target, std::uint64_t v);

/// One cache line per shard so workers never false-share counter slots.
struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};

}  // namespace metrics_detail

/// True unless FEMTOCR_METRICS=0/off/false or set_metrics_enabled(false).
inline bool metrics_enabled() {
  const int e = metrics_detail::g_enabled.load(std::memory_order_relaxed);
  return e >= 0 ? e != 0 : metrics_detail::enabled_slow();
}

/// Runtime override of the kill switch (wins over the environment).
void set_metrics_enabled(bool on);

// ---------------------------------------------------------------- counter ----

/// Monotonic event counter. add() is wait-free: shard lookup + relaxed add.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) {
    if (n == 0 || !metrics_enabled()) return;
    shards_[metrics_detail::shard_index()].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Folds the shards in shard-index order. Integer addition is exact and
  /// commutative, so the total is thread-count invariant.
  std::uint64_t total() const;

  /// Zeroes every shard (handles stay valid; used by MetricsRegistry).
  void reset();

 private:
  metrics_detail::PaddedU64 shards_[kMetricShards];
};

// -------------------------------------------------------------- histogram ----

/// Log-bucketed histogram of nonnegative values. Bucket b (for binary
/// exponent e in [kMinExp, kMaxExp)) covers [2^e, 2^(e+1)); boundaries are
/// exact at powers of two (pinned by tests). Values below 2^kMinExp
/// (including 0 and negatives) land in the underflow bucket, values at or
/// above 2^kMaxExp in the overflow bucket.
class Histogram {
 public:
  static constexpr int kMinExp = -32;
  static constexpr int kMaxExp = 32;
  /// underflow + one bucket per exponent + overflow.
  static constexpr std::size_t kNumBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp) + 2;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Bucket slot for `v` (exposed for tests; total function of the value).
  static std::size_t bucket_index(double v);
  /// Inclusive lower / exclusive upper boundary of bucket `index`.
  /// The underflow bucket reports lo = 0; the overflow bucket hi = +inf.
  static double bucket_lo(std::size_t index);
  static double bucket_hi(std::size_t index);

  void observe(double v) {
    if (!metrics_enabled()) return;
    Shard& s = shards_[metrics_detail::shard_index()];
    s.buckets[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    metrics_detail::add_double(s.sum, v);
    metrics_detail::fold_min(s.min, v);
    metrics_detail::fold_max(s.max, v);
  }

  std::uint64_t count() const;
  double sum() const;
  /// 0 when empty.
  double min() const;
  double max() const;
  /// Folded per-bucket counts, shard-index order, all kNumBuckets slots.
  std::vector<std::uint64_t> bucket_counts() const;

  void reset();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> buckets[kNumBuckets]{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    // min/max start at the fold identities (+inf / -inf), matching what
    // reset() restores — a 0.0 start would pin the min of an all-positive
    // series (fold_min never replaces a smaller sentinel). The accessors
    // still skip shards with count == 0, so untouched shards never leak
    // the sentinels into the fold.
    std::atomic<double> min{std::numeric_limits<double>::infinity()};
    std::atomic<double> max{-std::numeric_limits<double>::infinity()};
  };
  Shard shards_[kMetricShards];
};

// ------------------------------------------------------------------ timer ----

/// Accumulated wall-clock statistic: call count, total and max nanoseconds,
/// plus log-bucketed duration counts (the Histogram bucketer applied to
/// nanoseconds) so p50/p90/p99 are derivable from any dump. Values are
/// nondeterministic by nature; they are exported to JSON only.
class TimerStat {
 public:
  TimerStat() = default;
  TimerStat(const TimerStat&) = delete;
  TimerStat& operator=(const TimerStat&) = delete;

  void record_ns(std::int64_t ns) {
    if (!metrics_enabled()) return;
    const auto d = static_cast<std::uint64_t>(ns > 0 ? ns : 0);
    Shard& s = shards_[metrics_detail::shard_index()];
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.total_ns.fetch_add(d, std::memory_order_relaxed);
    metrics_detail::fold_max_u64(s.max_ns, d);
    s.buckets[Histogram::bucket_index(static_cast<double>(d))].fetch_add(
        1, std::memory_order_relaxed);
  }

  std::uint64_t count() const;
  std::uint64_t total_ns() const;
  std::uint64_t max_ns() const;
  /// Folded per-bucket duration counts, all Histogram::kNumBuckets slots.
  std::vector<std::uint64_t> bucket_counts() const;

  void reset();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> total_ns{0};
    std::atomic<std::uint64_t> max_ns{0};
    std::atomic<std::uint64_t> buckets[Histogram::kNumBuckets]{};
  };
  Shard shards_[kMetricShards];
};

/// RAII wall-clock span feeding a TimerStat. When metrics are disabled at
/// construction the clock is never read — the kill switch removes even the
/// two monotonic_now_ns() calls from the hot path.
class ScopedTimer {
 public:
  explicit ScopedTimer(TimerStat& stat)
      : stat_(metrics_enabled() ? &stat : nullptr),
        start_ns_(stat_ != nullptr ? monotonic_now_ns() : 0) {}
  ~ScopedTimer() {
    if (stat_ != nullptr) stat_->record_ns(monotonic_now_ns() - start_ns_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimerStat* stat_;
  std::int64_t start_ns_;
};

// --------------------------------------------------------------- snapshot ----

struct HistogramBucketSnapshot {
  double lo = 0.0;
  double hi = 0.0;
  std::uint64_t count = 0;
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<HistogramBucketSnapshot> buckets;  ///< nonzero buckets only
};

struct TimerSnapshot {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
  std::vector<HistogramBucketSnapshot> buckets;  ///< nonzero buckets only
};

/// A folded, name-sorted copy of every registered metric.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  std::vector<std::pair<std::string, TimerSnapshot>> timers;
};

// --------------------------------------------------------------- registry ----

/// Process-wide registry. counter()/histogram()/timer() return stable
/// references (the registration mutex is off the hot path: call once per
/// site and cache the reference, as in the header comment's example).
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);
  TimerStat& timer(const std::string& name);

  /// Zeroes every registered metric. References handed out earlier remain
  /// valid — reset clears values, never the registrations.
  void reset();

  /// Folds all shards (shard-index order) into a name-sorted snapshot.
  MetricsSnapshot snapshot() const;

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

/// Shorthand for MetricsRegistry::instance().
MetricsRegistry& metrics();

// ------------------------------------------------------------ JSON export ----

/// Run provenance attached to every metrics dump.
struct MetricsManifest {
  std::uint64_t seed = 0;    ///< scenario seed, when the tool knows it
  std::size_t threads = 0;   ///< resolved worker count (default_threads())
  std::string scheme;        ///< scheme under test ("all" for comparisons)
  std::string cli;           ///< the argv the process was started with
  std::string git_sha;       ///< build's git revision ("unknown" outside git)
  std::string hostname;      ///< machine that produced the dump
  std::string started_at;    ///< UTC ISO-8601 process start (JSON-only:
                             ///< wall-clock data never reaches stdout)
};

/// Fills threads, the joined argv, and the provenance fields (git_sha from
/// the build, hostname and started_at from the runtime); seed/scheme stay
/// at their defaults for the caller to override.
MetricsManifest make_metrics_manifest(int argc, const char* const* argv);

/// Writes the full registry as one JSON document:
///   {"manifest": {seed, threads, scheme, build_type, cli},
///    "counters": {...}, "histograms": {...}, "timers_ns": {...}}
/// (schema documented in docs/OBSERVABILITY.md and validated by
/// tools/metrics_report.py --check).
void write_metrics_json(std::ostream& os, const MetricsManifest& manifest);

/// write_metrics_json to `path`; logs a warning and returns false on I/O
/// failure instead of throwing.
bool write_metrics_file(const std::string& path,
                        const MetricsManifest& manifest);

/// Convenience for the tools/examples: honours --metrics-out=FILE from
/// `args`, dumping the registry with a default manifest built from argv.
/// Returns true when a file was written.
bool write_metrics_if_requested(const Args& args, int argc,
                                const char* const* argv);

}  // namespace femtocr::util
