#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.h"

namespace femtocr::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  FEMTOCR_CHECK(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  FEMTOCR_CHECK(cells.size() == headers_.size(),
                "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  auto rule = [&] {
    os << '+';
    for (auto w : width) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(width[c]))
         << cells[c] << " |";
    }
    os << '\n';
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void Table::print_csv(std::ostream& os, const std::string& title) const {
  os << "csv," << title;
  for (const auto& h : headers_) os << ',' << h;
  os << '\n';
  for (const auto& row : rows_) {
    os << "csv," << title;
    for (const auto& cell : row) os << ',' << cell;
    os << '\n';
  }
}

std::string with_ci(double mean, double ci, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << mean << " +/- " << ci;
  return oss.str();
}

}  // namespace femtocr::util
