// Clang Thread Safety Analysis vocabulary for the femtocr library.
//
// Two things live here:
//
//  1. The FEMTOCR_* annotation macros — thin wrappers over Clang's
//     capability attributes (https://clang.llvm.org/docs/ThreadSafetyAnalysis
//     .html). Under any non-Clang compiler (GCC builds this tree daily)
//     every macro expands to nothing, so the annotations are zero-cost
//     documentation locally and a hard compile gate in the CI
//     `thread-safety` job (-DFEMTOCR_THREAD_SAFETY=ON adds
//     -Wthread-safety -Werror=thread-safety).
//
//  2. The annotated synchronization types Mutex / MutexLock / CondVar.
//     libstdc++'s std::mutex carries no capability attributes, so locking
//     it is invisible to the analysis; these wrappers are the tree's
//     lockable vocabulary instead. Library code never declares a raw
//     std::mutex member (enforced by the no-unannotated-mutex lint rule):
//     it declares a util::Mutex and marks the state it protects with
//     FEMTOCR_GUARDED_BY so the compiler — not a 50-seed property run —
//     rejects an unlocked access.
//
// Usage pattern (util/metrics.cpp, util/parallel.* are the references):
//
//   class Worklist {
//     mutable util::Mutex mutex_;
//     std::vector<Item> items_ FEMTOCR_GUARDED_BY(mutex_);
//    public:
//     void push(Item it) {
//       util::MutexLock lock(mutex_);
//       items_.push_back(std::move(it));   // OK: capability held
//     }
//   };
//
// Condition-variable waits use CondVar::wait(mutex) inside an explicit
// while (!predicate) loop — never a predicate lambda, which the analysis
// cannot see into (the lambda body is a separate unannotated function).
#pragma once

#include <condition_variable>
#include <mutex>

// Clang >= 3.6 understands the capability attribute family; every other
// compiler sees empty expansions. SWIG and doc generators also take the
// empty branch.
#if defined(__clang__) && !defined(SWIG)
#define FEMTOCR_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define FEMTOCR_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

/// Marks a class as a capability (a lockable resource).
#define FEMTOCR_CAPABILITY(x) FEMTOCR_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class whose lifetime acquires/releases a capability.
#define FEMTOCR_SCOPED_CAPABILITY FEMTOCR_THREAD_ANNOTATION_(scoped_lockable)

/// Data member readable/writable only while holding the capability.
#define FEMTOCR_GUARDED_BY(x) FEMTOCR_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer member whose *pointee* is protected by the capability.
#define FEMTOCR_PT_GUARDED_BY(x) FEMTOCR_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function that acquires the capability and returns holding it.
#define FEMTOCR_ACQUIRE(...) \
  FEMTOCR_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// Function that releases the capability the caller holds.
#define FEMTOCR_RELEASE(...) \
  FEMTOCR_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Function that acquires the capability iff it returns `ret`.
#define FEMTOCR_TRY_ACQUIRE(ret, ...) \
  FEMTOCR_THREAD_ANNOTATION_(try_acquire_capability(ret, __VA_ARGS__))

/// Caller must hold the capability across the call.
#define FEMTOCR_REQUIRES(...) \
  FEMTOCR_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock guard).
#define FEMTOCR_EXCLUDES(...) \
  FEMTOCR_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (no acquire/release).
#define FEMTOCR_ASSERT_CAPABILITY(x) \
  FEMTOCR_THREAD_ANNOTATION_(assert_capability(x))

/// Function returning a reference to the named capability.
#define FEMTOCR_RETURN_CAPABILITY(x) FEMTOCR_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: disables analysis inside one function body. Every use
/// needs a comment explaining why the analysis cannot see the invariant.
#define FEMTOCR_NO_THREAD_SAFETY_ANALYSIS \
  FEMTOCR_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace femtocr::util {

/// std::mutex with capability attributes: the analysis tracks lock() /
/// unlock() pairing and every FEMTOCR_GUARDED_BY access. Same cost and
/// semantics as the std::mutex it wraps.
class FEMTOCR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FEMTOCR_ACQUIRE() { m_.lock(); }
  void unlock() FEMTOCR_RELEASE() { m_.unlock(); }
  bool try_lock() FEMTOCR_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  std::mutex m_;
};

/// RAII lock over util::Mutex — the annotated std::lock_guard equivalent
/// (libstdc++'s guards carry no scoped_lockable attribute).
class FEMTOCR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) FEMTOCR_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() FEMTOCR_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable waiting on util::Mutex. wait() atomically releases
/// and reacquires the mutex, so the caller's capability set is unchanged
/// around the call — which is exactly what FEMTOCR_REQUIRES expresses.
/// Callers loop explicitly:  while (!ready_) cv_.wait(mutex_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) FEMTOCR_REQUIRES(mu) { cv_.wait(mu); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  // condition_variable_any waits on any BasicLockable; the pool and the
  // registry wait off the hot path, where its extra internal mutex hop is
  // noise. (std::condition_variable would demand a raw std::mutex back.)
  std::condition_variable_any cv_;
};

}  // namespace femtocr::util
