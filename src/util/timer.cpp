#include "util/timer.h"

#include <chrono>
#include <cstdio>
#include <ctime>

namespace femtocr::util {

std::int64_t monotonic_now_ns() {
  // The one sanctioned raw-clock read in the tree (no-raw-chrono-clock).
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string wall_clock_iso8601() {
  // The one sanctioned wall-clock (system_clock) read: provenance strings
  // for the JSON manifests. Seconds precision is plenty for "which run
  // produced this dump".
  const std::time_t now = std::chrono::system_clock::to_time_t(
      std::chrono::system_clock::now());
  std::tm utc{};
#if defined(_WIN32)
  gmtime_s(&utc, &now);
#else
  gmtime_r(&now, &utc);
#endif
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec);
  return buf;
}

}  // namespace femtocr::util
