#include "util/timer.h"

#include <chrono>

namespace femtocr::util {

std::int64_t monotonic_now_ns() {
  // The one sanctioned raw-clock read in the tree (no-raw-chrono-clock).
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace femtocr::util
