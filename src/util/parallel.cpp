#include "util/parallel.h"

#include <cstdlib>
#include <string>

#include "util/check.h"

namespace femtocr::util {

namespace {

/// True on any thread currently executing job indices (workers and the
/// participating caller alike); nested parallel_for runs inline then.
thread_local bool t_in_job = false;

struct InJobScope {
  bool prev;
  InJobScope() : prev(t_in_job) { t_in_job = true; }
  ~InJobScope() { t_in_job = prev; }
};

std::size_t env_or_hardware_threads() {
  if (const char* env = std::getenv("FEMTOCR_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::atomic<std::size_t> g_default_threads{0};  // 0 = env/hardware

}  // namespace

std::size_t default_threads() {
  const std::size_t overridden = g_default_threads.load();
  return overridden > 0 ? overridden : env_or_hardware_threads();
}

void set_default_threads(std::size_t n) { g_default_threads.store(n); }

ThreadPool::ThreadPool(std::size_t threads) {
  FEMTOCR_CHECK(threads >= 1, "ThreadPool needs at least the calling thread");
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back(&ThreadPool::worker_loop, this);
  }
}

ThreadPool::~ThreadPool() {
  // Constructors/destructors are outside the thread-safety analysis (and
  // outside concurrency: nobody may race the destructor), but the join
  // still swaps the worker vector out under the lock so the shutdown
  // handshake mirrors the annotated discipline everywhere else.
  std::vector<std::thread> workers;
  {
    MutexLock lock(mutex_);
    stop_ = true;
    workers.swap(workers_);
  }
  wake_.notify_all();
  for (std::thread& w : workers) w.join();
}

std::size_t ThreadPool::size() const {
  MutexLock lock(mutex_);
  return workers_.size() + 1;
}

void ThreadPool::ensure_size(std::size_t threads) {
  MutexLock lock(mutex_);
  if (workers_.size() + 1 >= threads) return;
  // Grow only between jobs: workers_ must not be mutated mid-dispatch.
  // Explicit predicate loop (not a wait lambda): the analysis cannot look
  // into a lambda body, but it tracks guarded reads in this scope fine.
  while (fn_ != nullptr) done_.wait(mutex_);
  while (workers_.size() + 1 < threads) {
    workers_.emplace_back(&ThreadPool::worker_loop, this);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  mutex_.lock();
  for (;;) {
    while (!stop_ && !(fn_ != nullptr && job_id_ != seen && slots_ > 0)) {
      wake_.wait(mutex_);
    }
    if (stop_) {
      mutex_.unlock();
      return;
    }
    seen = job_id_;
    --slots_;
    ++active_;
    const std::function<void(std::size_t)>& fn = *fn_;
    const std::size_t n = n_;
    mutex_.unlock();
    run_indices(fn, n);
    mutex_.lock();
    --active_;
    if (active_ == 0) done_.notify_all();
  }
}

void ThreadPool::run_indices(const std::function<void(std::size_t)>& fn,
                             std::size_t n) {
  InJobScope scope;
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return;
    try {
      fn(i);
    } catch (...) {
      MutexLock lock(mutex_);
      if (!error_) error_ = std::current_exception();
      // Abandon the remaining indices so the job drains quickly.
      next_.store(n, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::for_each(std::size_t n, std::size_t max_threads,
                          const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (max_threads <= 1 || n == 1 || t_in_job) {
    // Inline path: trivial jobs or a nested call from inside a running job
    // (joining the pool again would deadlock).
    InJobScope scope;
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  mutex_.lock();
  if (workers_.empty()) {
    // A pool with no workers runs everything on the caller. (The check
    // lives under the lock now that workers_ is guarded; this path is
    // once per job, never per index.)
    mutex_.unlock();
    InJobScope scope;
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // One job at a time: a second caller parks here until the pool is free.
  while (fn_ != nullptr) done_.wait(mutex_);
  fn_ = &fn;
  n_ = n;
  next_.store(0, std::memory_order_relaxed);
  error_ = nullptr;
  slots_ = std::min(max_threads - 1, workers_.size());
  ++job_id_;
  mutex_.unlock();
  wake_.notify_all();

  run_indices(fn, n);  // the caller is a full participant

  mutex_.lock();
  while (active_ != 0) done_.wait(mutex_);
  // Workers that never claimed a ticket must not join a stale job.
  slots_ = 0;
  fn_ = nullptr;
  std::exception_ptr error = error_;
  error_ = nullptr;
  mutex_.unlock();
  done_.notify_all();  // unpark any caller queued behind this job
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_threads());
  return pool;
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (threads == 0) threads = default_threads();
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool& pool = ThreadPool::global();
  pool.ensure_size(threads);
  pool.for_each(n, threads, fn);
}

}  // namespace femtocr::util
