// Contract-checking macros for the femtocr library.
//
// Two severities:
//
//   FEMTOCR_CHECK*  — always active (benches included). Failures indicate a
//   programming error or an invalid configuration and throw std::logic_error
//   with file:line context and the offending values. These guards sit on
//   construction, configuration, and solver entry/exit paths, not in
//   per-slot hot loops, so the cost is negligible.
//
//   FEMTOCR_DCHECK* — the same contracts, compiled out in optimized builds
//   (any build defining NDEBUG) unless FEMTOCR_ENABLE_DCHECK is defined
//   (CMake: -DFEMTOCR_DCHECK=ON). These may sit in hot loops: per-iteration
//   finiteness of dual prices, per-slot budget sums, belief ranges.
//
// Variants (each has a FEMTOCR_DCHECK_* twin):
//
//   FEMTOCR_CHECK(cond, msg)          — bare condition
//   FEMTOCR_CHECK_GE(a, b, msg)       — a >= b, values printed on failure
//   FEMTOCR_CHECK_LE(a, b, msg)       — a <= b, values printed on failure
//   FEMTOCR_CHECK_NEAR(a, b, tol, msg)— |a - b| <= tol
//   FEMTOCR_CHECK_FINITE(x, msg)      — std::isfinite(x): rejects NaN/inf
//   FEMTOCR_CHECK_PROB(x, msg)        — finite and within [0, 1]
//
// Macro arguments are evaluated exactly once (captured into locals), so
// side-effecting expressions are safe in CHECK variants; DCHECK variants do
// NOT evaluate their arguments when compiled out — never put required side
// effects inside any contract macro.
#pragma once

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

namespace femtocr::util {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream oss;
  oss << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) oss << " — " << msg;
  throw std::logic_error(oss.str());
}

namespace detail {

/// Failure path for the two-operand comparison checks: renders both operand
/// expressions with their runtime values so a failed contract in a long
/// simulation is diagnosable from the exception text alone.
template <typename A, typename B>
[[noreturn]] void check_cmp_failed(const char* op, const char* a_expr,
                                   const A& a, const char* b_expr, const B& b,
                                   const char* file, int line,
                                   const std::string& msg) {
  std::ostringstream oss;
  oss << a_expr << " (= " << a << ") " << op << ' ' << b_expr << " (= " << b
      << ')';
  check_failed(oss.str().c_str(), file, line, msg);
}

template <typename T>
[[noreturn]] void check_value_failed(const char* what, const char* expr,
                                     const T& value, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream oss;
  oss << expr << " (= " << value << ") " << what;
  check_failed(oss.str().c_str(), file, line, msg);
}

}  // namespace detail
}  // namespace femtocr::util

#define FEMTOCR_CHECK(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::femtocr::util::check_failed(#cond, __FILE__, __LINE__, (msg));    \
    }                                                                     \
  } while (false)

#define FEMTOCR_CHECK_GE(a, b, msg)                                       \
  do {                                                                    \
    const auto femtocr_chk_a_ = (a);                                      \
    const auto femtocr_chk_b_ = (b);                                      \
    if (!(femtocr_chk_a_ >= femtocr_chk_b_)) {                            \
      ::femtocr::util::detail::check_cmp_failed(                          \
          ">=", #a, femtocr_chk_a_, #b, femtocr_chk_b_, __FILE__,         \
          __LINE__, (msg));                                               \
    }                                                                     \
  } while (false)

#define FEMTOCR_CHECK_LE(a, b, msg)                                       \
  do {                                                                    \
    const auto femtocr_chk_a_ = (a);                                      \
    const auto femtocr_chk_b_ = (b);                                      \
    if (!(femtocr_chk_a_ <= femtocr_chk_b_)) {                            \
      ::femtocr::util::detail::check_cmp_failed(                          \
          "<=", #a, femtocr_chk_a_, #b, femtocr_chk_b_, __FILE__,         \
          __LINE__, (msg));                                               \
    }                                                                     \
  } while (false)

#define FEMTOCR_CHECK_NEAR(a, b, tol, msg)                                \
  do {                                                                    \
    const double femtocr_chk_a_ = (a);                                    \
    const double femtocr_chk_b_ = (b);                                    \
    const double femtocr_chk_tol_ = (tol);                                \
    if (!(std::fabs(femtocr_chk_a_ - femtocr_chk_b_) <=                   \
          femtocr_chk_tol_)) {                                            \
      ::femtocr::util::detail::check_cmp_failed(                          \
          "≈", #a, femtocr_chk_a_, #b, femtocr_chk_b_, __FILE__,          \
          __LINE__, (msg));                                               \
    }                                                                     \
  } while (false)

#define FEMTOCR_CHECK_FINITE(x, msg)                                      \
  do {                                                                    \
    const double femtocr_chk_x_ = (x);                                    \
    if (!std::isfinite(femtocr_chk_x_)) {                                 \
      ::femtocr::util::detail::check_value_failed(                        \
          "is not finite", #x, femtocr_chk_x_, __FILE__, __LINE__,        \
          (msg));                                                         \
    }                                                                     \
  } while (false)

#define FEMTOCR_CHECK_PROB(x, msg)                                        \
  do {                                                                    \
    const double femtocr_chk_x_ = (x);                                    \
    if (!(femtocr_chk_x_ >= 0.0 && femtocr_chk_x_ <= 1.0)) {              \
      ::femtocr::util::detail::check_value_failed(                        \
          "is not a probability in [0, 1]", #x, femtocr_chk_x_,           \
          __FILE__, __LINE__, (msg));                                     \
    }                                                                     \
  } while (false)

// Debug-only twins. Active when NDEBUG is absent (Debug builds) or when
// FEMTOCR_ENABLE_DCHECK is defined explicitly (-DFEMTOCR_DCHECK=ON), e.g.
// in the sanitizer CI job. When inactive, arguments are parsed but never
// evaluated — `sizeof` keeps variables odr-used so -Wunused stays quiet.
#if !defined(NDEBUG) || defined(FEMTOCR_ENABLE_DCHECK)
#define FEMTOCR_DCHECK_IS_ON() 1
#define FEMTOCR_DCHECK(cond, msg) FEMTOCR_CHECK(cond, msg)
#define FEMTOCR_DCHECK_GE(a, b, msg) FEMTOCR_CHECK_GE(a, b, msg)
#define FEMTOCR_DCHECK_LE(a, b, msg) FEMTOCR_CHECK_LE(a, b, msg)
#define FEMTOCR_DCHECK_NEAR(a, b, tol, msg) FEMTOCR_CHECK_NEAR(a, b, tol, msg)
#define FEMTOCR_DCHECK_FINITE(x, msg) FEMTOCR_CHECK_FINITE(x, msg)
#define FEMTOCR_DCHECK_PROB(x, msg) FEMTOCR_CHECK_PROB(x, msg)
#else
#define FEMTOCR_DCHECK_IS_ON() 0
#define FEMTOCR_DCHECK_DISCARD_(...)                                      \
  do {                                                                    \
    (void)sizeof((__VA_ARGS__, 0));                                       \
  } while (false)
#define FEMTOCR_DCHECK(cond, msg) FEMTOCR_DCHECK_DISCARD_((cond), (msg))
#define FEMTOCR_DCHECK_GE(a, b, msg) FEMTOCR_DCHECK_DISCARD_((a), (b), (msg))
#define FEMTOCR_DCHECK_LE(a, b, msg) FEMTOCR_DCHECK_DISCARD_((a), (b), (msg))
#define FEMTOCR_DCHECK_NEAR(a, b, tol, msg) \
  FEMTOCR_DCHECK_DISCARD_((a), (b), (tol), (msg))
#define FEMTOCR_DCHECK_FINITE(x, msg) FEMTOCR_DCHECK_DISCARD_((x), (msg))
#define FEMTOCR_DCHECK_PROB(x, msg) FEMTOCR_DCHECK_DISCARD_((x), (msg))
#endif
