// Contract-checking macros for the femtocr library.
//
// FEMTOCR_CHECK(cond, msg)  — precondition / invariant check that is always
// active (benches included): failures indicate a programming error or an
// invalid configuration, and throw std::logic_error with file:line context.
// These guards sit on construction and configuration paths, not in per-slot
// hot loops, so the cost is negligible.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace femtocr::util {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream oss;
  oss << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) oss << " — " << msg;
  throw std::logic_error(oss.str());
}

}  // namespace femtocr::util

#define FEMTOCR_CHECK(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::femtocr::util::check_failed(#cond, __FILE__, __LINE__, (msg));    \
    }                                                                     \
  } while (false)
