#include "util/metrics.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <ostream>
#include <string_view>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "util/args.h"
#include "util/log.h"
#include "util/parallel.h"
#include "util/thread_annotations.h"

namespace femtocr::util {

namespace metrics_detail {

std::atomic<int> g_enabled{-1};

bool enabled_slow() {
  // Same precedence style as FEMTOCR_THREADS: the environment is consulted
  // once, the first time any metric op runs, and cached; an explicit
  // set_metrics_enabled() beforehand would already have filled g_enabled.
  bool on = true;
  if (const char* env = std::getenv("FEMTOCR_METRICS")) {
    const std::string_view v(env);
    if (v == "0" || v == "off" || v == "false" || v == "OFF" || v == "FALSE") {
      on = false;
    }
  }
  int expected = -1;
  g_enabled.compare_exchange_strong(expected, on ? 1 : 0);
  return g_enabled.load(std::memory_order_relaxed) != 0;
}

std::size_t shard_index() {
  // Stable per-thread slot: threads take ids in first-touch order and keep
  // them for life. Ids alias modulo kMetricShards, so the relaxed
  // fetch_add writes stay correct even if a process ever outlives 32
  // distinct threads — aliasing costs contention, never correctness.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id % kMetricShards;
}

void add_double(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
  }
}

void fold_min(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void fold_max(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void fold_max_u64(std::atomic<std::uint64_t>& target, std::uint64_t v) {
  std::uint64_t cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace metrics_detail

void set_metrics_enabled(bool on) {
  metrics_detail::g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------- counter ----

std::uint64_t Counter::total() const {
  std::uint64_t sum = 0;
  for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
  return sum;
}

void Counter::reset() {
  for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
}

// -------------------------------------------------------------- histogram ----

std::size_t Histogram::bucket_index(double v) {
  // !(v >= lo) also routes NaN into the underflow bucket instead of
  // feeding it to ilogb.
  if (!(v >= std::ldexp(1.0, kMinExp))) return 0;
  if (v >= std::ldexp(1.0, kMaxExp)) return kNumBuckets - 1;
  int e = std::ilogb(v);  // floor(log2 v): exact at powers of two
  if (e < kMinExp) e = kMinExp;
  if (e >= kMaxExp) e = kMaxExp - 1;
  return static_cast<std::size_t>(e - kMinExp) + 1;
}

double Histogram::bucket_lo(std::size_t index) {
  if (index == 0) return 0.0;
  if (index >= kNumBuckets - 1) return std::ldexp(1.0, kMaxExp);
  return std::ldexp(1.0, kMinExp + static_cast<int>(index) - 1);
}

double Histogram::bucket_hi(std::size_t index) {
  if (index == 0) return std::ldexp(1.0, kMinExp);
  if (index >= kNumBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return std::ldexp(1.0, kMinExp + static_cast<int>(index));
}

std::uint64_t Histogram::count() const {
  std::uint64_t sum = 0;
  for (const auto& s : shards_) {
    sum += s.count.load(std::memory_order_relaxed);
  }
  return sum;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const auto& s : shards_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::min() const {
  double out = std::numeric_limits<double>::infinity();
  bool any = false;
  for (const auto& s : shards_) {
    if (s.count.load(std::memory_order_relaxed) > 0) {
      const double m = s.min.load(std::memory_order_relaxed);
      out = m < out ? m : out;
      any = true;
    }
  }
  return any ? out : 0.0;
}

double Histogram::max() const {
  double out = -std::numeric_limits<double>::infinity();
  bool any = false;
  for (const auto& s : shards_) {
    if (s.count.load(std::memory_order_relaxed) > 0) {
      const double m = s.max.load(std::memory_order_relaxed);
      out = m > out ? m : out;
      any = true;
    }
  }
  return any ? out : 0.0;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(kNumBuckets, 0);
  for (const auto& s : shards_) {
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      out[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void Histogram::reset() {
  for (auto& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
    s.min.store(std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
    s.max.store(-std::numeric_limits<double>::infinity(),
                std::memory_order_relaxed);
  }
}

// ------------------------------------------------------------------ timer ----

std::uint64_t TimerStat::count() const {
  std::uint64_t sum = 0;
  for (const auto& s : shards_) {
    sum += s.count.load(std::memory_order_relaxed);
  }
  return sum;
}

std::uint64_t TimerStat::total_ns() const {
  std::uint64_t sum = 0;
  for (const auto& s : shards_) {
    sum += s.total_ns.load(std::memory_order_relaxed);
  }
  return sum;
}

std::uint64_t TimerStat::max_ns() const {
  std::uint64_t out = 0;
  for (const auto& s : shards_) {
    const std::uint64_t m = s.max_ns.load(std::memory_order_relaxed);
    out = m > out ? m : out;
  }
  return out;
}

std::vector<std::uint64_t> TimerStat::bucket_counts() const {
  std::vector<std::uint64_t> out(Histogram::kNumBuckets, 0);
  for (const auto& s : shards_) {
    for (std::size_t b = 0; b < Histogram::kNumBuckets; ++b) {
      out[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return out;
}

void TimerStat::reset() {
  for (auto& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.total_ns.store(0, std::memory_order_relaxed);
    s.max_ns.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

// --------------------------------------------------------------- registry ----

struct MetricsRegistry::Impl {
  // Guards the registration maps only: the metric objects themselves are
  // sharded-atomic and written lock-free from the hot paths. References
  // handed out by the maps stay valid for the process lifetime (values
  // are never erased), so holding the lock across add()/observe() is
  // neither needed nor allowed on the hot path.
  mutable Mutex mutex;
  // Ordered maps so snapshot()/JSON iterate name-sorted without a re-sort.
  std::map<std::string, std::unique_ptr<Counter>> counters
      FEMTOCR_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<Histogram>> histograms
      FEMTOCR_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<TimerStat>> timers
      FEMTOCR_GUARDED_BY(mutex);
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl i;
  return i;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry& metrics() { return MetricsRegistry::instance(); }

Counter& MetricsRegistry::counter(const std::string& name) {
  Impl& im = impl();
  MutexLock lock(im.mutex);
  auto& slot = im.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  Impl& im = impl();
  MutexLock lock(im.mutex);
  auto& slot = im.histograms[name];
  if (!slot) {
    slot = std::make_unique<Histogram>();
    slot->reset();  // arm the per-shard min/max sentinels
  }
  return *slot;
}

TimerStat& MetricsRegistry::timer(const std::string& name) {
  Impl& im = impl();
  MutexLock lock(im.mutex);
  auto& slot = im.timers[name];
  if (!slot) slot = std::make_unique<TimerStat>();
  return *slot;
}

void MetricsRegistry::reset() {
  Impl& im = impl();
  MutexLock lock(im.mutex);
  for (auto& [name, c] : im.counters) c->reset();
  for (auto& [name, h] : im.histograms) h->reset();
  for (auto& [name, t] : im.timers) t->reset();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  Impl& im = impl();
  MutexLock lock(im.mutex);
  MetricsSnapshot snap;
  snap.counters.reserve(im.counters.size());
  for (const auto& [name, c] : im.counters) {
    snap.counters.emplace_back(name, c->total());
  }
  snap.histograms.reserve(im.histograms.size());
  for (const auto& [name, h] : im.histograms) {
    HistogramSnapshot hs;
    hs.count = h->count();
    hs.sum = h->sum();
    hs.min = h->min();
    hs.max = h->max();
    const std::vector<std::uint64_t> counts = h->bucket_counts();
    for (std::size_t b = 0; b < counts.size(); ++b) {
      if (counts[b] == 0) continue;
      hs.buckets.push_back(
          {Histogram::bucket_lo(b), Histogram::bucket_hi(b), counts[b]});
    }
    snap.histograms.emplace_back(name, std::move(hs));
  }
  snap.timers.reserve(im.timers.size());
  for (const auto& [name, t] : im.timers) {
    TimerSnapshot ts{t->count(), t->total_ns(), t->max_ns(), {}};
    const std::vector<std::uint64_t> counts = t->bucket_counts();
    for (std::size_t b = 0; b < counts.size(); ++b) {
      if (counts[b] == 0) continue;
      ts.buckets.push_back(
          {Histogram::bucket_lo(b), Histogram::bucket_hi(b), counts[b]});
    }
    snap.timers.emplace_back(name, std::move(ts));
  }
  return snap;
}

// ------------------------------------------------------------ JSON export ----

namespace {

void json_escape(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* kHex = "0123456789abcdef";
          os << "\\u00" << kHex[(c >> 4) & 0xF] << kHex[c & 0xF];
        } else {
          os << c;
        }
    }
  }
}

void json_string(std::ostream& os, std::string_view s) {
  os << '"';
  json_escape(os, s);
  os << '"';
}

void json_number(std::ostream& os, double v) {
  // JSON has no inf/nan; the overflow bucket's +inf upper edge maps to
  // null, which metrics_report.py treats as "unbounded".
  if (std::isfinite(v)) {
    os << v;
  } else {
    os << "null";
  }
}

const char* build_type_string() {
#ifdef FEMTOCR_BUILD_TYPE
  return FEMTOCR_BUILD_TYPE;
#elif defined(NDEBUG)
  return "optimized";
#else
  return "debug";
#endif
}

}  // namespace

MetricsManifest make_metrics_manifest(int argc, const char* const* argv) {
  MetricsManifest m;
  m.threads = default_threads();
  for (int i = 0; i < argc; ++i) {
    if (i > 0) m.cli += ' ';
    m.cli += argv[i];
  }
#ifdef FEMTOCR_GIT_SHA
  m.git_sha = FEMTOCR_GIT_SHA;
#else
  m.git_sha = "unknown";
#endif
#if defined(__unix__) || defined(__APPLE__)
  char host[256] = {};
  if (::gethostname(host, sizeof(host) - 1) == 0 && host[0] != '\0') {
    m.hostname = host;
  } else {
    m.hostname = "unknown";
  }
#else
  m.hostname = "unknown";
#endif
  m.started_at = wall_clock_iso8601();
  return m;
}

void write_metrics_json(std::ostream& os, const MetricsManifest& manifest) {
  const MetricsSnapshot snap = metrics().snapshot();
  const auto old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);

  os << "{\n  \"manifest\": {\n";
  os << "    \"seed\": " << manifest.seed << ",\n";
  os << "    \"threads\": " << manifest.threads << ",\n";
  os << "    \"scheme\": ";
  json_string(os, manifest.scheme);
  os << ",\n    \"build_type\": ";
  json_string(os, build_type_string());
  os << ",\n    \"metrics_enabled\": "
     << (metrics_enabled() ? "true" : "false");
  os << ",\n    \"git_sha\": ";
  json_string(os, manifest.git_sha);
  os << ",\n    \"hostname\": ";
  json_string(os, manifest.hostname);
  os << ",\n    \"started_at\": ";
  json_string(os, manifest.started_at);
  os << ",\n    \"cli\": ";
  json_string(os, manifest.cli);
  os << "\n  },\n";

  os << "  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    os << (i > 0 ? ",\n    " : "\n    ");
    json_string(os, snap.counters[i].first);
    os << ": " << snap.counters[i].second;
  }
  os << (snap.counters.empty() ? "},\n" : "\n  },\n");

  os << "  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& [name, h] = snap.histograms[i];
    os << (i > 0 ? ",\n    " : "\n    ");
    json_string(os, name);
    os << ": {\"count\": " << h.count << ", \"sum\": ";
    json_number(os, h.sum);
    os << ", \"min\": ";
    json_number(os, h.min);
    os << ", \"max\": ";
    json_number(os, h.max);
    os << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) os << ", ";
      os << "{\"lo\": ";
      json_number(os, h.buckets[b].lo);
      os << ", \"hi\": ";
      json_number(os, h.buckets[b].hi);
      os << ", \"count\": " << h.buckets[b].count << '}';
    }
    os << "]}";
  }
  os << (snap.histograms.empty() ? "},\n" : "\n  },\n");

  os << "  \"timers_ns\": {";
  for (std::size_t i = 0; i < snap.timers.size(); ++i) {
    const auto& [name, t] = snap.timers[i];
    os << (i > 0 ? ",\n    " : "\n    ");
    json_string(os, name);
    os << ": {\"count\": " << t.count << ", \"total_ns\": " << t.total_ns
       << ", \"max_ns\": " << t.max_ns << ", \"buckets\": [";
    for (std::size_t b = 0; b < t.buckets.size(); ++b) {
      if (b > 0) os << ", ";
      os << "{\"lo\": ";
      json_number(os, t.buckets[b].lo);
      os << ", \"hi\": ";
      json_number(os, t.buckets[b].hi);
      os << ", \"count\": " << t.buckets[b].count << '}';
    }
    os << "]}";
  }
  os << (snap.timers.empty() ? "}\n" : "\n  }\n");
  os << "}\n";
  os.precision(old_precision);
}

bool write_metrics_file(const std::string& path,
                        const MetricsManifest& manifest) {
  std::ofstream out(path);
  if (!out) {
    FEMTOCR_LOG_WARN << "cannot open metrics output file: " << path;
    return false;
  }
  write_metrics_json(out, manifest);
  return static_cast<bool>(out);
}

bool write_metrics_if_requested(const Args& args, int argc,
                                const char* const* argv) {
  const std::string path = args.get("metrics-out", std::string());
  if (path.empty()) return false;
  return write_metrics_file(path, make_metrics_manifest(argc, argv));
}

}  // namespace femtocr::util
