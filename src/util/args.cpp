#include "util/args.h"

#include <stdexcept>

#include "util/check.h"

namespace femtocr::util {

Args::Args(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    FEMTOCR_CHECK(token.rfind("--", 0) == 0,
                  "arguments must start with '--': " + token);
    const std::string body = token.substr(2);
    FEMTOCR_CHECK(!body.empty(), "empty argument name");
    const auto eq = body.find('=');
    if (eq == std::string::npos) {
      values_[body] = "true";  // boolean flag form
    } else {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
  for (const auto& [key, value] : values_) {
    (void)value;
    consumed_[key] = false;
  }
}

bool Args::has(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return false;
  consumed_[key] = true;
  return true;
}

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_[key] = true;
  return it->second;
}

double Args::get(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_[key] = true;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    FEMTOCR_CHECK(pos == it->second.size(), "trailing junk");
    return v;
  } catch (const std::exception&) {
    throw std::logic_error("--" + key + " expects a number, got '" +
                           it->second + "'");
  }
}

std::int64_t Args::get(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_[key] = true;
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(it->second, &pos);
    FEMTOCR_CHECK(pos == it->second.size(), "trailing junk");
    return v;
  } catch (const std::exception&) {
    throw std::logic_error("--" + key + " expects an integer, got '" +
                           it->second + "'");
  }
}

bool Args::get(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  consumed_[key] = true;
  if (it->second == "true" || it->second == "1" || it->second == "yes") {
    return true;
  }
  if (it->second == "false" || it->second == "0" || it->second == "no") {
    return false;
  }
  throw std::logic_error("--" + key + " expects a boolean, got '" +
                         it->second + "'");
}

std::vector<std::string> Args::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [key, used] : consumed_) {
    if (!used) out.push_back(key);
  }
  return out;
}

}  // namespace femtocr::util
