// Strong quantity types for the Eq. 5–23 pipeline (header-only).
//
// The paper's math moves constantly between decibels, linear power ratios,
// probabilities and rates; a unit mix-up (feeding a dB PSNR where a linear
// SINR belongs, or a posterior where a rate belongs) produces plausible
// numbers and silently wrong figures. These wrappers make every such mix a
// *compile error* while costing nothing at runtime: each type is exactly
// one double (static_asserts below), construction and access are trivial,
// and every conversion is the same arithmetic expression the tree used
// before wrapping — so the fig3/fig4b golden stdout is byte-identical with
// the wrappers deployed (that identity is the zero-cost proof, gated in
// ctest and CI).
//
// Rules of the vocabulary:
//
//  * Construction is explicit, conversion out is explicit (.value()); no
//    implicit path exists in either direction, so `Db + LinearGain` and
//    `double p = prob` both fail to compile (pinned by the try_compile
//    negative tests in tests/units_negative/).
//  * Each physical conversion has ONE definition, here: dB <-> linear goes
//    through to_db()/to_linear(), probabilities complement through
//    complement(), dBm <-> watts through to_dbm()/watts_from_dbm().
//    Layer ownership is documented in docs/DEVELOPING.md ("Quantity types
//    & unit discipline").
//  * Only unit-preserving arithmetic is defined per type (dB gains stack
//    additively, linear gains multiplicatively, probabilities of
//    independent events multiply); anything else must unwrap explicitly,
//    which is the reviewer's cue to look hard at the line.
//  * The wrappers carry no range contracts of their own — tests build
//    deliberately-invalid values to exercise downstream FEMTOCR_CHECK_*
//    guards. checked_prob() is the validating entry point when a raw
//    double crosses into probability land.
#pragma once

#include <cmath>
#include <type_traits>

#include "util/check.h"

namespace femtocr::util {

namespace units_detail {

/// CRTP base: one double, explicit in, explicit out, ordered within the
/// same derived type only. Derived types add their unit-preserving ops.
template <class Derived>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) : v_(v) {}

  /// The raw double — the ONLY way out of the type system.
  constexpr double value() const { return v_; }

  friend constexpr bool operator==(const Derived& a, const Derived& b) {
    return a.value() == b.value();
  }
  friend constexpr bool operator!=(const Derived& a, const Derived& b) {
    return !(a == b);
  }
  friend constexpr bool operator<(const Derived& a, const Derived& b) {
    return a.value() < b.value();
  }
  friend constexpr bool operator<=(const Derived& a, const Derived& b) {
    return a.value() <= b.value();
  }
  friend constexpr bool operator>(const Derived& a, const Derived& b) {
    return a.value() > b.value();
  }
  friend constexpr bool operator>=(const Derived& a, const Derived& b) {
    return a.value() >= b.value();
  }

 private:
  double v_ = 0.0;
};

/// Mixin for quantities that add and scale (dB, watts, hertz, rates):
/// same-type +/- and scalar *// keep the unit; cross-type ops don't exist.
template <class Derived>
class Additive : public Quantity<Derived> {
 public:
  using Quantity<Derived>::Quantity;

  friend constexpr Derived operator+(const Derived& a, const Derived& b) {
    return Derived{a.value() + b.value()};
  }
  friend constexpr Derived operator-(const Derived& a, const Derived& b) {
    return Derived{a.value() - b.value()};
  }
  friend constexpr Derived operator*(const Derived& a, double s) {
    return Derived{a.value() * s};
  }
  friend constexpr Derived operator*(double s, const Derived& a) {
    return Derived{s * a.value()};
  }
  friend constexpr Derived operator/(const Derived& a, double s) {
    return Derived{a.value() / s};
  }
};

}  // namespace units_detail

/// A decibel quantity: PSNR, SINR-in-dB, gains/losses in dB. Adding two Db
/// stacks gains; there is deliberately no Db * Db.
class Db : public units_detail::Additive<Db> {
 public:
  using units_detail::Additive<Db>::Additive;
};

/// A dimensionless linear power ratio: linear SINR/SNR, channel gains.
/// Gains compose multiplicatively, so * and / stay in-unit (on top of the
/// additive mixin's +/- for summing powers expressed as ratios).
class LinearGain : public units_detail::Additive<LinearGain> {
 public:
  using units_detail::Additive<LinearGain>::Additive;

  friend constexpr LinearGain operator*(const LinearGain& a,
                                        const LinearGain& b) {
    return LinearGain{a.value() * b.value()};
  }
  friend constexpr LinearGain operator/(const LinearGain& a,
                                        const LinearGain& b) {
    return LinearGain{a.value() / b.value()};
  }
};

/// Transmit/received power in watts.
class Watts : public units_detail::Additive<Watts> {
 public:
  using units_detail::Additive<Watts>::Additive;
};

/// Bandwidth / frequency in hertz.
class Hertz : public units_detail::Additive<Hertz> {
 public:
  using units_detail::Additive<Hertz>::Additive;
};

/// Video/data rate in megabits per second (the paper quotes all sequence
/// and channel rates in Mbps).
class Mbps : public units_detail::Additive<Mbps> {
 public:
  using units_detail::Additive<Mbps>::Additive;
};

/// Bits deliverable within one scheduling slot (rate integrated over the
/// slot): the unit the per-slot program's budgets live in.
class BitsPerSlot : public units_detail::Additive<BitsPerSlot> {
 public:
  using units_detail::Additive<BitsPerSlot>::Additive;
};

/// A probability. No additive arithmetic (p + q is rarely a probability);
/// * composes independent events, complement() gives 1 - p.
class Prob : public units_detail::Quantity<Prob> {
 public:
  using units_detail::Quantity<Prob>::Quantity;

  friend constexpr Prob operator*(const Prob& a, const Prob& b) {
    return Prob{a.value() * b.value()};
  }
};

// ------------------------------------------------------------ conversions ----
// Single definition each. Every expression below is byte-for-byte the
// arithmetic the call sites used before the wrappers landed — bit-exactness
// is pinned by tests/test_units.cpp and the figure goldens.

/// dB -> linear power ratio: 10^(x/10).
inline LinearGain to_linear(Db db) {
  return LinearGain{std::pow(10.0, db.value() / 10.0)};
}

/// Linear power ratio -> dB: 10 log10(g).
inline Db to_db(LinearGain g) { return Db{10.0 * std::log10(g.value())}; }

/// 1 - p.
constexpr Prob complement(Prob p) { return Prob{1.0 - p.value()}; }

/// Power -> dBm (dB relative to 1 mW).
inline Db to_dbm(Watts w) { return Db{10.0 * std::log10(w.value() * 1e3)}; }

/// dBm -> power in watts.
inline Watts watts_from_dbm(Db dbm) {
  return Watts{std::pow(10.0, dbm.value() / 10.0) * 1e-3};
}

/// Rate sustained for `slot_seconds` -> bits delivered in the slot.
constexpr BitsPerSlot bits_per_slot(Mbps rate, double slot_seconds) {
  return BitsPerSlot{rate.value() * 1e6 * slot_seconds};
}

/// Bits in a slot of `slot_seconds` -> the sustaining rate.
constexpr Mbps mbps_from_bits(BitsPerSlot bits, double slot_seconds) {
  return Mbps{bits.value() / (1e6 * slot_seconds)};
}

/// Validating entry point for raw doubles crossing into probability land
/// (sensor fusion outputs, config files): contract-checked, then wrapped.
inline Prob checked_prob(double v, const char* what) {
  FEMTOCR_CHECK_PROB(v, what);
  return Prob{v};
}

// Zero-cost proof: every wrapper is exactly one double, trivially copyable,
// so it passes and returns in the same registers the raw double used.
static_assert(sizeof(Db) == sizeof(double));
static_assert(sizeof(LinearGain) == sizeof(double));
static_assert(sizeof(Watts) == sizeof(double));
static_assert(sizeof(Hertz) == sizeof(double));
static_assert(sizeof(Mbps) == sizeof(double));
static_assert(sizeof(BitsPerSlot) == sizeof(double));
static_assert(sizeof(Prob) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Db> &&
              std::is_trivially_copyable_v<LinearGain> &&
              std::is_trivially_copyable_v<Watts> &&
              std::is_trivially_copyable_v<Hertz> &&
              std::is_trivially_copyable_v<Mbps> &&
              std::is_trivially_copyable_v<BitsPerSlot> &&
              std::is_trivially_copyable_v<Prob>);

}  // namespace femtocr::util
