// Minimal leveled logger.
//
// The library is quiet by default (kWarn); simulations and examples can
// raise verbosity to trace per-slot decisions. Logging is process-global;
// the level is atomic and the stderr sink is mutex-serialized, so
// replication workers (util/parallel.h) may log concurrently without
// tearing lines.
#pragma once

#include <sstream>
#include <string>

namespace femtocr::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Sets/reads the global threshold. Messages below the threshold are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr as "[LEVEL] message" if enabled.
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, oss_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    oss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream oss_;
};
}  // namespace detail

}  // namespace femtocr::util

#define FEMTOCR_LOG(level) ::femtocr::util::detail::LogStream(level)
#define FEMTOCR_LOG_INFO FEMTOCR_LOG(::femtocr::util::LogLevel::kInfo)
#define FEMTOCR_LOG_DEBUG FEMTOCR_LOG(::femtocr::util::LogLevel::kDebug)
#define FEMTOCR_LOG_WARN FEMTOCR_LOG(::femtocr::util::LogLevel::kWarn)
