#include "util/log.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace femtocr::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& msg) {
  const LogLevel threshold = g_level.load();
  if (level < threshold || threshold == LogLevel::kOff) return;
  // Serialize the sink: replication workers may log concurrently and a
  // torn line would make failures undiagnosable.
  static std::mutex sink_mutex;
  std::lock_guard<std::mutex> lock(sink_mutex);
  // The logger is the one sanctioned console sink in the library.
  std::cerr << '[' << level_name(level) << "] " << msg << '\n';  // lint-allow: no-stdio
}

}  // namespace femtocr::util
