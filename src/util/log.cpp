#include "util/log.h"

#include <iostream>

namespace femtocr::util {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_line(LogLevel level, const std::string& msg) {
  if (level < g_level || g_level == LogLevel::kOff) return;
  // The logger is the one sanctioned console sink in the library.
  std::cerr << '[' << level_name(level) << "] " << msg << '\n';  // lint-allow: no-stdio
}

}  // namespace femtocr::util
