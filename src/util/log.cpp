#include "util/log.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <string_view>

#include "util/thread_annotations.h"

namespace femtocr::util {

namespace {

/// Serializes the stderr sink: replication workers may log concurrently
/// and a torn line would make failures undiagnosable. The capability
/// guards the stream insertion below — std::cerr itself cannot carry a
/// GUARDED_BY, so the MutexLock scope is the whole annotated story.
Mutex g_sink_mutex;

/// Sentinel for "not yet resolved from the environment". Same precedence
/// style as FEMTOCR_THREADS: an explicit set_log_level() wins, else the
/// FEMTOCR_LOG env var (parsed once, on first use), else kWarn.
constexpr int kLevelUnset = -1;

std::atomic<int> g_level{kLevelUnset};

LogLevel parse_level_env() {
  LogLevel level = LogLevel::kWarn;
  if (const char* env = std::getenv("FEMTOCR_LOG")) {
    const std::string_view v(env);
    if (v == "trace") level = LogLevel::kTrace;
    else if (v == "debug") level = LogLevel::kDebug;
    else if (v == "info") level = LogLevel::kInfo;
    else if (v == "warn") level = LogLevel::kWarn;
    else if (v == "error") level = LogLevel::kError;
    else if (v == "off") level = LogLevel::kOff;
    // Unrecognised values keep the kWarn default rather than erroring:
    // the logger must never abort the process it is observing.
  }
  return level;
}

LogLevel resolve_level() {
  const int raw = g_level.load();
  if (raw != kLevelUnset) return static_cast<LogLevel>(raw);
  int expected = kLevelUnset;
  g_level.compare_exchange_strong(expected,
                                  static_cast<int>(parse_level_env()));
  return static_cast<LogLevel>(g_level.load());
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level));
}
LogLevel log_level() { return resolve_level(); }

void log_line(LogLevel level, const std::string& msg) {
  const LogLevel threshold = resolve_level();
  if (level < threshold || threshold == LogLevel::kOff) return;
  MutexLock lock(g_sink_mutex);
  // The logger is the one sanctioned console sink in the library.
  std::cerr << '[' << level_name(level) << "] " << msg << '\n';  // lint-allow: no-stdio
}

}  // namespace femtocr::util
